//! Slot-wave scheduling of job DAGs over `nodes × slots`, with locality
//! preference, retry on task failure, and node-failure handling.
//!
//! The scheduler is a discrete-event simulation. When a task is assigned to
//! a slot its logic executes *immediately* (real or phantom math against
//! the shared tile store), producing a receipt; the hardware model turns
//! the receipt into a simulated duration and a completion event is
//! scheduled. Simulated time therefore advances only through the event
//! queue and is fully deterministic for a given seed.
//!
//! ## Lookahead speculation (host parallelism)
//!
//! With `threads > 1`, Real-mode task *compute* runs ahead of simulated
//! time on a persistent worker pool (`SpecPool`, created once per run).
//! The moment a job's dependencies complete, all its tasks are enqueued;
//! workers execute each one against a recording [`TaskCtx`] that logs every
//! context interaction ([`crate::job::TaskOp`]) without touching the DFS.
//! When the DES loop later assigns the task to a slot, the recorded log is
//! *replayed* against a fresh context bound to the real node: replayed
//! reads recompute canonical receipts and are validated against the
//! recorded tiles (`Arc` identity or deep equality); any mismatch or error
//! discards the speculation and the task runs inline at canonical time,
//! which is always sound. Replay preserves the exact operation order —
//! including f64 accumulation order — so results, receipts, reports, and
//! placement RNG draws are bitwise-identical at any thread count.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cumulon_dfs::dfs::NodeId;
use cumulon_dfs::TileStore;
use cumulon_trace::{JobSpan, PhaseBreakdown, TaskSpan, Trace, TraceEvent};

use crate::billing::{billed_hours, cluster_cost, BillingPolicy};
use crate::cluster::ClusterSpec;
use crate::des::{EventQueue, SimTime};
use crate::error::{ClusterError, Result};
use crate::hw::HardwareModel;
use crate::job::{ExecMode, JobDag, StagedWrite, TaskCtx, TaskFn, TaskOp, TaskReceipt};
use crate::metrics::{FaultStats, JobStats, RunReport, TaskStat};

/// Process-wide default worker-thread count, used when
/// [`SchedulerConfig::threads`] is `0`. Starts at `1` (sequential) so
/// library embedders opt into parallelism explicitly; binaries set it once
/// at startup via [`set_default_threads`].
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default worker-thread count that
/// [`SchedulerConfig::threads`]` == 0` resolves to. Passing `0` selects the
/// host's available parallelism.
pub fn set_default_threads(n: usize) {
    let n = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The current process-wide default worker-thread count.
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed).max(1)
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Maximum attempts per task before the run fails (Hadoop default: 4).
    pub max_attempts: u32,
    /// Hadoop-style speculative execution: when slots would otherwise idle,
    /// launch a backup copy of a straggling task; the first copy to finish
    /// wins and the other is killed.
    pub speculative: bool,
    /// A task is a straggler candidate once it has run longer than this
    /// factor times the mean duration of its job's completed tasks.
    pub speculation_factor: f64,
    /// Disable locality-aware task placement (ablation switch).
    pub ignore_locality: bool,
    /// Worker threads for task compute. `1` runs task logic inline in the
    /// DES loop (the legacy path); `N > 1` speculates task logic ahead of
    /// simulated time on a persistent pool of `N` workers, replaying each
    /// recording at canonical assignment time, which keeps the run
    /// bitwise-identical to a sequential one; `0` resolves to the
    /// process-wide default (see [`set_default_threads`]).
    pub threads: usize,
    /// Run lookahead speculation on the process-wide *shared* worker pool
    /// ([`shared_spec_pool`]) instead of a private per-run pool. Multiple
    /// concurrent runs then compete for the same workers, scheduled by
    /// [`SchedulerConfig::lane_priority`]. Results stay bitwise-identical
    /// either way: speculation is a cache of work the canonical replay
    /// validates, so pool contention only shifts *when* lookahead happens,
    /// never what the run computes.
    pub shared_pool: bool,
    /// Priority lane on the shared pool (higher runs first; FIFO within a
    /// lane). Ignored for private pools. A multi-tenant service maps
    /// tenant priorities here.
    pub lane_priority: u8,
    /// Spill-aware wave resolution: under a memory budget
    /// ([`TileStore::set_memory_budget`]) each wave resolves assignments
    /// whose hinted input tile is RAM-resident before those whose input is
    /// demoted to the spill plane, so on-demand readbacks land late in the
    /// wave (after any prefetch has had time to readmit them) instead of
    /// evicting tiles the rest of the wave still needs. Assignment order,
    /// commit order, simulated time, receipts, placement RNG draws and
    /// fingerprints are bitwise-identical with this on or off (the
    /// `spill-schedule-transparency` invariant); only host-side resolution
    /// order and spill-plane traffic change.
    pub spill_aware: bool,
    /// Demoted tiles of the wave frontier (the wave's own spilled inputs,
    /// then the next wave's) to readmit from the spill plane ahead of the
    /// demand reads (0 disables prefetch). With worker threads the
    /// readmissions are staged through the lookahead pool under a
    /// dedicated lease, overlapping the wave's resolve phase;
    /// single-threaded runs readmit inline as one batch before
    /// resolution. Transparent to fingerprints exactly like
    /// `spill_aware`.
    pub prefetch_depth: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_attempts: 4,
            speculative: false,
            speculation_factor: 1.5,
            ignore_locality: false,
            threads: 0,
            shared_pool: false,
            lane_priority: 0,
            spill_aware: false,
            prefetch_depth: 0,
        }
    }
}

impl SchedulerConfig {
    /// Default config with speculative execution enabled.
    pub fn with_speculation() -> Self {
        SchedulerConfig {
            speculative: true,
            ..Default::default()
        }
    }

    /// Returns the config with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the config with spill-aware wave resolution on and the
    /// given prefetch depth (`cumulon run --prefetch-depth N`).
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        self.spill_aware = true;
        self.prefetch_depth = depth;
        self
    }
}

/// A correlated bulk revocation: the spot market reclaims a set of nodes
/// at once, optionally after a warning. During the warning window the
/// scheduler stops assigning new tasks to the doomed nodes (in-flight
/// attempts drain normally) and the DFS proactively copies blocks that
/// live *only* on doomed nodes to survivors, within the byte budget the
/// lead window allows. Whatever cannot be drained is lost at `at_s` and
/// recovered via lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct Revocation {
    /// Simulated time the nodes are reclaimed.
    pub at_s: f64,
    /// Node ids reclaimed together. Out-of-range or already-dead ids are
    /// skipped (a market model may name nodes a shrunken cluster no
    /// longer has).
    pub nodes: Vec<u32>,
    /// Seconds of warning before `at_s` (0 = no warning, no drain).
    pub warning_lead_s: f64,
}

/// Failure injection plan.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// Independent probability that any task attempt fails.
    pub task_failure_prob: f64,
    /// `(time_s, node)` pairs: the node dies at that simulated time.
    pub node_failures: Vec<(f64, u32)>,
    /// Correlated bulk spot revocations (see [`Revocation`]).
    pub revocations: Vec<Revocation>,
    /// Seed for the failure coin flips.
    pub seed: u64,
}

impl FailurePlan {
    fn attempt_fails(&self, job: usize, task: usize, attempt: u32) -> bool {
        if self.task_failure_prob <= 0.0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add((job as u64) << 32)
            .wrapping_add((task as u64) << 4)
            .wrapping_add(attempt as u64);
        let mut rng = StdRng::seed_from_u64(key);
        rng.random_range(0.0f64..1.0) < self.task_failure_prob
    }
}

/// Structured description of a failed run: what broke, what was lost, and
/// what still completed — enough for a lineage-based recovery driver to
/// decide which producer jobs to re-execute instead of giving up.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// The terminal error that stopped the run.
    pub error: ClusterError,
    /// `(job name, task index)` of the task that exhausted its attempts,
    /// when the failure was task-level.
    pub failed: Option<(String, usize)>,
    /// Distinct DFS paths whose blocks were observed lost by task attempts.
    pub lost_blocks: Vec<String>,
    /// Nodes that died during this run.
    pub dead_nodes: Vec<u32>,
    /// Jobs that fully completed before the failure (their outputs exist).
    pub completed_jobs: Vec<JobStats>,
    /// Simulated time consumed before the run aborted.
    pub makespan_s: f64,
    /// Fault counters accumulated up to the failure.
    pub faults: FaultStats,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} jobs completed, {} blocks lost, {} nodes dead)",
            self.error,
            self.completed_jobs.len(),
            self.lost_blocks.len(),
            self.dead_nodes.len()
        )
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// `(job, task, attempt, epoch, node, slot, ok)`
    TaskFinish {
        job: usize,
        task: usize,
        attempt: u32,
        epoch: u64,
        node: u32,
        slot: u32,
        ok: bool,
    },
    NodeFailure {
        node: u32,
    },
    /// Warning lead of `failures.revocations[idx]`: stop assigning to the
    /// doomed nodes and drain their sole-replica blocks.
    RevocationWarning {
        idx: usize,
    },
    /// `failures.revocations[idx]` takes effect: the nodes are reclaimed.
    Revocation {
        idx: usize,
    },
}

#[derive(Clone, Copy)]
struct Running {
    job: usize,
    task: usize,
    epoch: u64,
    started: SimTime,
    input_local: bool,
}

struct JobState {
    pending: VecDeque<usize>,
    attempts: Vec<u32>,
    task_done: Vec<bool>,
    /// Whether a backup copy has already been launched for the task.
    speculated: Vec<bool>,
    remaining_deps: usize,
    unfinished_tasks: usize,
    stats: JobStats,
    done: bool,
}

impl JobState {
    /// Mean duration of this job's completed tasks (None before the first
    /// completion — speculation needs a baseline).
    fn mean_completed_s(&self) -> Option<f64> {
        if self.stats.tasks.is_empty() {
            return None;
        }
        Some(
            self.stats
                .tasks
                .iter()
                .map(TaskStat::duration_s)
                .sum::<f64>()
                / self.stats.tasks.len() as f64,
        )
    }
}

/// The DAG scheduler. One-shot: build, then [`Scheduler::run`].
pub struct Scheduler {
    spec: ClusterSpec,
    store: TileStore,
    hw: HardwareModel,
    billing: BillingPolicy,
}

impl Scheduler {
    /// Creates a scheduler bound to a cluster.
    pub fn new(
        spec: ClusterSpec,
        store: TileStore,
        hw: HardwareModel,
        billing: BillingPolicy,
    ) -> Self {
        Scheduler {
            spec,
            store,
            hw,
            billing,
        }
    }

    /// Executes the DAG, returning the run report. Failures are collapsed
    /// to their terminal [`ClusterError`]; use [`Scheduler::try_run`] when
    /// the caller wants the structured failure for recovery.
    pub fn run(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
    ) -> Result<RunReport> {
        self.try_run(dag, mode, config, failures)
            .map_err(|f| f.error)
    }

    /// Executes the DAG. On failure, returns a [`RunFailure`] describing
    /// which task broke, which DFS blocks were observed lost, which nodes
    /// died, and which jobs still completed — the inputs a lineage-based
    /// recovery driver needs.
    // The fat Err is the point: RunFailure carries the whole diagnostic
    // payload lineage recovery needs, and failures are rare.
    #[allow(clippy::result_large_err)]
    pub fn try_run(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
    ) -> std::result::Result<RunReport, RunFailure> {
        self.try_run_traced(dag, mode, config, failures, &Trace::disabled())
    }

    /// [`Scheduler::try_run`] with span recording: every task attempt,
    /// job, node failure and speculation outcome is recorded into
    /// `trace` (a [`Trace::disabled`] handle records nothing and costs
    /// one branch per site). Recording is strictly observational — it
    /// never reads results back into scheduling decisions — so a traced
    /// run is bitwise-identical to an untraced one.
    #[allow(clippy::result_large_err)]
    pub fn try_run_traced(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
        trace: &Trace,
    ) -> std::result::Result<RunReport, RunFailure> {
        let threads = match config.threads {
            0 => default_threads(),
            n => n,
        };
        trace.set_run_meta(
            self.spec.instance.name,
            self.spec.nodes as usize,
            self.spec.slots_per_node as usize,
        );
        // The store counts tile-cache hits/misses into the current run's
        // trace; reset to disabled afterwards so driver-side reads
        // (result downloads, later untraced runs) stop counting.
        self.store.set_trace(trace.clone());
        let mut exec = Exec::new(self, dag, mode, config, failures, threads, trace.clone());
        let mut queue: EventQueue<Event> = EventQueue::new();
        for &(t, node) in &failures.node_failures {
            queue.schedule(SimTime(t), Event::NodeFailure { node });
        }
        for (idx, rev) in failures.revocations.iter().enumerate() {
            if rev.warning_lead_s > 0.0 {
                let warn_at = (rev.at_s - rev.warning_lead_s).max(0.0);
                queue.schedule(SimTime(warn_at), Event::RevocationWarning { idx });
            }
            queue.schedule(SimTime(rev.at_s.max(0.0)), Event::Revocation { idx });
        }
        let outcome = exec.drive(&mut queue);
        self.store.set_trace(Trace::disabled());
        match outcome {
            Ok(()) => Ok(exec.report()),
            Err(error) => Err(exec.into_failure(error)),
        }
    }
}

/// A task assignment made at slot-fill time. Carries everything the
/// executor and finalizer need so task *compute* can run off-thread while
/// all bookkeeping stays with the DES loop, applied in canonical
/// (assignment) order.
struct WaveEntry {
    job: usize,
    task: usize,
    /// Attempt number this assignment will become. Written back to
    /// `JobState::attempts` only at finalize so entries of an aborted pass
    /// leave no trace, exactly like a sequential run that never reached
    /// them.
    attempt: u32,
    epoch: u64,
    node: u32,
    slot: u32,
    is_backup: bool,
}

/// What one task attempt produced: its receipt (sans deferred write I/O),
/// staged tile writes, and the logic error if any.
struct ExecOutcome {
    receipt: TaskReceipt,
    staged: Vec<StagedWrite>,
    error: Option<ClusterError>,
}

/// A task execution recorded ahead of simulated time: the operation log to
/// replay at canonical finalize time, plus the logic error if the task
/// failed while recording (in which case the log is discarded and the task
/// re-runs inline — an errored recording may have stopped mid-logic).
struct Recorded {
    ops: Vec<TaskOp>,
    error: Option<ClusterError>,
}

/// One unit of lookahead work: everything a worker needs to run a task's
/// logic against a recording context, detached from any node or slot.
/// Keyed by `(lease, job, task)` so concurrent runs sharing one pool
/// never collide.
struct SpecJob {
    lease: u64,
    job: usize,
    task: usize,
    priority: u8,
    seq: u64,
    run: TaskFn,
    store: TileStore,
    mode: ExecMode,
}

/// Result slot for one speculated task. `Running` means a worker has
/// claimed it; `take` waits on the condvar until it flips to `Done`.
enum SpecSlot {
    Running,
    Done(std::thread::Result<Recorded>),
}

struct SpecState {
    queue: Vec<SpecJob>,
    results: HashMap<(u64, usize, usize), SpecSlot>,
    next_seq: u64,
    shutdown: bool,
}

impl SpecState {
    /// Index of the next job a worker should claim: highest priority lane
    /// first, FIFO (enqueue order) within a lane.
    fn best(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .max_by_key(|(_, j)| (j.priority, std::cmp::Reverse(j.seq)))
            .map(|(i, _)| i)
    }
}

/// Persistent worker pool for lookahead speculation.
///
/// A run leases the pool (crate-internal `lease`); every speculated task is
/// keyed by the lease id, so many concurrent runs (e.g. a multi-tenant
/// service, see `cumulon-serve`) can share one pool without their results
/// colliding. The queue is priority-ordered: higher
/// [`SchedulerConfig::lane_priority`] lanes are claimed first, FIFO within
/// a lane. Workers park on a condvar between jobs, so feeding a task costs
/// a queue push, not a thread spawn.
///
/// Sharing never affects results: speculation is a cache the canonical
/// DES-loop replay validates read-for-read, so a starved lane merely falls
/// back to inline execution, which is bitwise-equivalent by construction.
pub struct SpecPool {
    state: Arc<(Mutex<SpecState>, Condvar)>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_lease: AtomicU64,
}

/// One run's lease on a [`SpecPool`]. Dropping the lease withdraws any of
/// the run's still-queued work and discards its unclaimed results.
struct SpecLease {
    pool: Arc<SpecPool>,
    lease: u64,
    priority: u8,
}

impl Drop for SpecLease {
    fn drop(&mut self) {
        self.pool.retire(self.lease);
    }
}

impl SpecPool {
    /// Creates a pool with `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        let state = Arc::new((
            Mutex::new(SpecState {
                queue: Vec::new(),
                results: HashMap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let workers = (0..threads)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || Self::worker(state))
            })
            .collect();
        SpecPool {
            state,
            workers,
            next_lease: AtomicU64::new(0),
        }
    }

    /// Worker threads currently serving the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    fn lease(self: &Arc<Self>, priority: u8) -> SpecLease {
        SpecLease {
            pool: Arc::clone(self),
            lease: self.next_lease.fetch_add(1, Ordering::Relaxed),
            priority,
        }
    }

    fn worker(state: Arc<(Mutex<SpecState>, Condvar)>) {
        // Lookahead executions run ahead of simulated time and may be
        // discarded; only the canonical DES-loop replay may record trace
        // state (e.g. tile-cache counters), so suppress recording for
        // this worker thread's entire lifetime.
        let _quiet = cumulon_trace::suppress();
        let (lock, cvar) = &*state;
        loop {
            let job = {
                let mut st = lock.lock();
                loop {
                    if let Some(i) = st.best() {
                        let job = st.queue.swap_remove(i);
                        // Marked Running under the same lock as the pop, so
                        // `take` always sees a job as queued or slotted,
                        // never in between.
                        st.results
                            .insert((job.lease, job.job, job.task), SpecSlot::Running);
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = cvar.wait(st);
                }
            };
            let recorded = catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = TaskCtx::new_recording(job.store.clone(), job.mode);
                let error = (job.run)(&mut ctx).err();
                Recorded {
                    ops: ctx.into_ops(),
                    error,
                }
            }));
            let mut st = lock.lock();
            st.results
                .insert((job.lease, job.job, job.task), SpecSlot::Done(recorded));
            cvar.notify_all();
        }
    }

    /// Enqueues `(job, task, logic)` triples under a lease, stamping lane
    /// priority and FIFO sequence numbers.
    fn enqueue(
        &self,
        lease: &SpecLease,
        tasks: Vec<(usize, usize, TaskFn)>,
        store: &TileStore,
        mode: ExecMode,
    ) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        for (job, task, run) in tasks {
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push(SpecJob {
                lease: lease.lease,
                job,
                task,
                priority: lease.priority,
                seq,
                run,
                store: store.clone(),
                mode,
            });
        }
        cvar.notify_all();
    }

    /// Claims the speculative result for `(job, task)` under a lease. A
    /// finished recording is returned; a running one is waited for; a
    /// still-queued one is withdrawn and `None` returned (the caller
    /// executes inline). Each recording is consumed at most once — retries
    /// and backup copies find nothing and fall back to inline execution,
    /// which must re-run the logic anyway for side effects a new attempt
    /// would redo.
    fn take(&self, lease: &SpecLease, job: usize, task: usize) -> Option<Recorded> {
        let key = (lease.lease, job, task);
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        loop {
            match st.results.get(&key) {
                Some(SpecSlot::Done(_)) => {
                    let Some(SpecSlot::Done(recorded)) = st.results.remove(&key) else {
                        unreachable!("matched Done above");
                    };
                    drop(st);
                    match recorded {
                        Ok(rec) => return Some(rec),
                        Err(panic) => resume_unwind(panic),
                    }
                }
                Some(SpecSlot::Running) => st = cvar.wait(st),
                None => {
                    if let Some(pos) = st
                        .queue
                        .iter()
                        .position(|q| (q.lease, q.job, q.task) == key)
                    {
                        st.queue.swap_remove(pos);
                    }
                    return None;
                }
            }
        }
    }

    /// Withdraws a finished run's queued work and unclaimed results.
    /// In-flight recordings are left to complete (workers hold no lock
    /// while executing); their slots are reaped here or on the next
    /// retire, so a crashed run can never wedge the pool.
    fn retire(&self, lease: u64) {
        let (lock, _) = &*self.state;
        let mut st = lock.lock();
        st.queue.retain(|q| q.lease != lease);
        st.results
            .retain(|&(l, _, _), slot| l != lease || matches!(slot, SpecSlot::Running));
    }
}

impl Drop for SpecPool {
    fn drop(&mut self) {
        {
            let (lock, cvar) = &*self.state;
            let mut st = lock.lock();
            st.shutdown = true;
            st.queue.clear();
            cvar.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The process-wide shared speculation pool
/// ([`SchedulerConfig::shared_pool`]). Created on first use with
/// `threads` workers; later calls return the same pool regardless of the
/// requested size (worker count is a process-level resource, fixed once).
/// A multi-tenant service creates it at startup so every admitted run
/// competes for the same workers under lane priorities instead of
/// spawning a private pool per request.
pub fn shared_spec_pool(threads: usize) -> Arc<SpecPool> {
    static SHARED: OnceLock<Arc<SpecPool>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(SpecPool::new(threads.max(1)))))
}

/// One in-flight DAG execution: all mutable scheduler state, so the run
/// loop, slot fill, worker pool, and commit logic can share it through
/// methods instead of a macro over locals.
struct Exec<'a> {
    sched: &'a Scheduler,
    dag: &'a JobDag,
    mode: ExecMode,
    config: SchedulerConfig,
    failures: &'a FailurePlan,
    /// This run's lease on a lookahead worker pool (private or shared);
    /// `None` when the run is single-threaded (inline legacy execution).
    pool: Option<SpecLease>,
    /// Second lease on the same pool, used to stage spill-plane prefetch
    /// work ([`SchedulerConfig::prefetch_depth`]). A separate lease keeps
    /// the `(lease, job, task)` result keys disjoint from the run's own
    /// lookahead recordings; prefetch results are never claimed and are
    /// reaped when the lease drops at run end.
    prefetch_lease: Option<SpecLease>,
    /// Monotone counter keying prefetch enqueues under `prefetch_lease`.
    prefetch_seq: usize,
    /// `readback_bytes_avoided` baseline at run start, so the trace credit
    /// at run end covers only this run's prefetch wins (recovery re-runs
    /// share one spill plane).
    spill_avoided_at_start: u64,
    /// Per-job flag: its tasks were handed to the pool (set once, the
    /// first `fill_slots` after the job's dependencies complete).
    spec_enqueued: Vec<bool>,
    jobs: Vec<JobState>,
    /// `dependents[j]`: jobs whose deps include `j`.
    dependents: Vec<Vec<usize>>,
    slot_state: Vec<Option<Running>>,
    node_alive: Vec<bool>,
    /// Nodes under a revocation warning: alive, in-flight attempts drain
    /// to completion, but no new work is assigned to them.
    doomed: Vec<bool>,
    next_epoch: u64,
    completed_jobs: usize,
    faults: FaultStats,
    lost_blocks: Vec<String>,
    dead_nodes: Vec<u32>,
    finished: Vec<JobStats>,
    makespan: SimTime,
    /// Span recorder (disabled = no-op). Purely observational.
    trace: Trace,
    /// Per-epoch span metadata stashed at finalize time (phases, byte
    /// counts, wave) and consumed when the matching completion event
    /// fires or the attempt is killed. Empty when tracing is disabled.
    epoch_meta: HashMap<u64, SpanMeta>,
    /// Monotone `fill_slots` pass counter; attempts assigned in the same
    /// pass share a wave number in the trace.
    wave: u64,
}

/// Trace metadata for one in-flight attempt, keyed by its epoch.
struct SpanMeta {
    attempt: u32,
    is_backup: bool,
    wave: u64,
    phases: PhaseBreakdown,
    read_bytes: u64,
    read_local_bytes: u64,
    write_bytes: u64,
    io_ops: u64,
}

impl<'a> Exec<'a> {
    fn new(
        sched: &'a Scheduler,
        dag: &'a JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &'a FailurePlan,
        threads: usize,
        trace: Trace,
    ) -> Self {
        let n_jobs = dag.jobs.len();
        let jobs: Vec<JobState> = dag
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| JobState {
                pending: (0..job.tasks.len()).collect(),
                attempts: vec![0; job.tasks.len()],
                task_done: vec![false; job.tasks.len()],
                speculated: vec![false; job.tasks.len()],
                remaining_deps: dag.deps[j].len(),
                unfinished_tasks: job.tasks.len(),
                stats: JobStats {
                    name: job.name.clone(),
                    op_label: job.op_label.clone(),
                    start_s: f64::INFINITY,
                    end_s: 0.0,
                    tasks: Vec::with_capacity(job.tasks.len()),
                    receipt: Default::default(),
                },
                done: false,
            })
            .collect();
        // Dependents index for completion propagation.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_jobs];
        for (j, deps) in dag.deps.iter().enumerate() {
            for &d in deps {
                dependents[d].push(j);
            }
        }
        let nodes = sched.spec.nodes;
        let slots = sched.spec.slots_per_node;
        // Nodes share ids with DFS datanodes; a node killed by an earlier
        // run on the same cluster stays dead for recovery re-runs.
        let node_alive: Vec<bool> = (0..nodes)
            .map(|n| sched.store.dfs().is_node_live(NodeId(n)))
            .collect();
        let pool = (threads > 1 || (config.shared_pool && threads > 0)).then(|| {
            let pool = if config.shared_pool {
                shared_spec_pool(threads)
            } else {
                Arc::new(SpecPool::new(threads))
            };
            pool.lease(config.lane_priority)
        });
        let prefetch_lease = (config.prefetch_depth > 0)
            .then(|| pool.as_ref().map(|l| l.pool.lease(config.lane_priority)))
            .flatten();
        let spill_avoided_at_start = sched
            .store
            .dfs()
            .spill_stats()
            .map(|s| s.readback_bytes_avoided)
            .unwrap_or(0);
        Exec {
            sched,
            dag,
            mode,
            config,
            failures,
            pool,
            prefetch_lease,
            prefetch_seq: 0,
            spill_avoided_at_start,
            spec_enqueued: vec![false; n_jobs],
            jobs,
            dependents,
            slot_state: vec![None; (nodes * slots) as usize],
            node_alive,
            doomed: vec![false; nodes as usize],
            next_epoch: 0,
            completed_jobs: 0,
            faults: FaultStats::default(),
            lost_blocks: Vec::new(),
            dead_nodes: Vec::new(),
            finished: Vec::new(),
            makespan: SimTime::ZERO,
            trace,
            epoch_meta: HashMap::new(),
            wave: 0,
        }
    }

    /// The main DES loop. Any `Err` is the terminal error of the run; the
    /// caller wraps it into a [`RunFailure`] with the accumulated state.
    fn drive(&mut self, queue: &mut EventQueue<Event>) -> Result<()> {
        self.dag.validate()?;
        self.zero_task_scan(SimTime::ZERO);
        self.fill_slots(queue)?;
        while self.completed_jobs < self.dag.jobs.len() {
            let Some((now, event)) = queue.pop() else {
                // No events but jobs remain: the cluster has no live nodes
                // or a dependency can never complete.
                return Err(ClusterError::InvalidDag(
                    "scheduler stalled: no runnable tasks but jobs remain (all nodes dead?)"
                        .to_string(),
                ));
            };
            self.makespan = now;
            match event {
                Event::TaskFinish {
                    job,
                    task,
                    attempt,
                    epoch,
                    node,
                    slot,
                    ok,
                } => self.on_task_finish(now, job, task, attempt, epoch, node, slot, ok, queue)?,
                Event::NodeFailure { node } => self.on_node_failure(node, queue)?,
                Event::RevocationWarning { idx } => self.on_revocation_warning(idx, queue)?,
                Event::Revocation { idx } => self.on_revocation(idx, queue)?,
            }
        }
        // Phase attribution for prefetch wins: credit the run's delta of
        // readback bytes that were readmitted ahead of demand. Purely
        // observational (SpillStats and the trace are outside the
        // fingerprint), and — like the tile-cache counters — host-timing
        // sensitive at `threads > 1`.
        if self.trace.is_enabled() {
            let avoided = self
                .sched
                .store
                .dfs()
                .spill_stats()
                .map(|s| s.readback_bytes_avoided)
                .unwrap_or(0)
                .saturating_sub(self.spill_avoided_at_start);
            if avoided > 0 {
                self.trace.spill_readback_avoided(avoided);
            }
        }
        Ok(())
    }

    /// Jobs with zero tasks complete the moment they become ready.
    fn zero_task_scan(&mut self, at: SimTime) {
        loop {
            let mut progressed = false;
            for j in 0..self.dag.jobs.len() {
                if !self.jobs[j].done
                    && self.jobs[j].remaining_deps == 0
                    && self.jobs[j].unfinished_tasks == 0
                {
                    self.jobs[j].done = true;
                    self.jobs[j].stats.start_s = at.secs();
                    self.jobs[j].stats.end_s = at.secs();
                    if self.trace.is_enabled() {
                        self.trace.record_job(JobSpan {
                            index: j,
                            name: self.jobs[j].stats.name.clone(),
                            op_label: self.jobs[j].stats.op_label.clone(),
                            start_s: at.secs(),
                            end_s: at.secs(),
                            round: 0,
                        });
                    }
                    self.finished.push(self.jobs[j].stats.clone());
                    self.completed_jobs += 1;
                    for &dep in &self.dependents[j] {
                        self.jobs[dep].remaining_deps -= 1;
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Picks the next task for a node: scan ready jobs in index order; within
    /// a job prefer a pending task whose dominant input is local to `node`
    /// (unless locality-aware placement is disabled).
    fn pick_task(&self, node: NodeId) -> Option<(usize, usize)> {
        for (j, state) in self.jobs.iter().enumerate() {
            if state.done || state.remaining_deps > 0 || state.pending.is_empty() {
                continue;
            }
            if !self.config.ignore_locality {
                // Locality pass.
                for &t in &state.pending {
                    if let Some((m, ti, tj)) = &self.dag.jobs[j].tasks[t].locality_hint {
                        if self.sched.store.tile_is_local(m, *ti, *tj, node) {
                            return Some((j, t));
                        }
                    } else {
                        // No hint: any slot is as good as any other.
                        return Some((j, t));
                    }
                }
            }
            // No local task: take the oldest pending one.
            return state.pending.front().map(|&t| (j, t));
        }
        None
    }

    /// Task choice for one free slot: a pending task, or — when slots would
    /// otherwise idle — a speculative backup of a straggler.
    fn pick_for_slot(&self, node: u32, now: SimTime) -> Option<(usize, usize, bool)> {
        if let Some((j, t)) = self.pick_task(NodeId(node)) {
            return Some((j, t, false));
        }
        if !self.config.speculative {
            return None;
        }
        self.slot_state
            .iter()
            .flatten()
            .filter(|r| {
                let js = &self.jobs[r.job];
                !js.task_done[r.task]
                    && !js.speculated[r.task]
                    && js.pending.is_empty()
                    && js.mean_completed_s().is_some_and(|mean| {
                        now.secs() - r.started.secs() > self.config.speculation_factor * mean
                    })
            })
            .max_by(|a, b| {
                let ea = now.secs() - a.started.secs();
                let eb = now.secs() - b.started.secs();
                ea.partial_cmp(&eb).expect("finite elapsed")
            })
            .map(|r| (r.job, r.task, true))
    }

    /// Assigns a task to a free slot: pending-queue/speculation bookkeeping,
    /// epoch allocation, and slot occupation. Attempt numbers and fault
    /// counters are only *computed* here — they are written back at
    /// finalize, so a wave aborted mid-commit leaves no counters from
    /// entries a sequential run would never have reached.
    fn assign(&mut self, node: u32, slot: u32, now: SimTime) -> Option<WaveEntry> {
        let (j, t, is_backup) = self.pick_for_slot(node, now)?;
        if is_backup {
            self.jobs[j].speculated[t] = true;
        } else {
            // Remove t from job j's pending queue.
            let pos = self.jobs[j]
                .pending
                .iter()
                .position(|&x| x == t)
                .expect("picked task is pending");
            self.jobs[j].pending.remove(pos);
        }
        let attempt = self.jobs[j].attempts[t] + 1;
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let input_local = self.dag.jobs[j].tasks[t]
            .locality_hint
            .as_ref()
            .map(|(m, ti, tj)| self.sched.store.tile_is_local(m, *ti, *tj, NodeId(node)))
            .unwrap_or(true);
        let idx = (node * self.sched.spec.slots_per_node + slot) as usize;
        self.slot_state[idx] = Some(Running {
            job: j,
            task: t,
            epoch,
            started: now,
            input_local,
        });
        Some(WaveEntry {
            job: j,
            task: t,
            attempt,
            epoch,
            node,
            slot,
            is_backup,
        })
    }

    /// Runs one task attempt's logic inline, at canonical time, writing
    /// straight through to the store. This is the reference semantics:
    /// the `threads == 1` path, and the fallback whenever a speculative
    /// recording is missing, errored, or fails replay validation.
    fn execute(&self, e: &WaveEntry) -> ExecOutcome {
        let mut ctx = TaskCtx::new(self.sched.store.clone(), NodeId(e.node), self.mode);
        let result = (self.dag.jobs[e.job].tasks[e.task].run)(&mut ctx);
        let (receipt, staged) = ctx.into_parts();
        ExecOutcome {
            receipt,
            staged,
            error: result.err(),
        }
    }

    /// Hands every task of every newly-ready job to the lookahead pool.
    /// A job is enqueued exactly once, the first `fill_slots` after its
    /// dependencies complete — at which point all its inputs are durable
    /// in the DFS, so workers can read them ahead of simulated time.
    fn spec_enqueue_ready(&mut self) {
        let Some(lease) = &self.pool else { return };
        let mut batch = Vec::new();
        for j in 0..self.dag.jobs.len() {
            if self.spec_enqueued[j] || self.jobs[j].done || self.jobs[j].remaining_deps > 0 {
                continue;
            }
            self.spec_enqueued[j] = true;
            for (t, task) in self.dag.jobs[j].tasks.iter().enumerate() {
                batch.push((j, t, Arc::clone(&task.run)));
            }
        }
        if !batch.is_empty() {
            lease
                .pool
                .enqueue(lease, batch, &self.sched.store, self.mode);
        }
    }

    /// Replays a recorded operation log against a fresh context bound to
    /// the assignment's real node, reproducing the exact receipts and
    /// accumulation order an inline run would produce. Reads are
    /// re-performed (recomputing canonical read receipts) and validated
    /// against the recorded tiles; any divergence or error returns `None`
    /// and the caller falls back to inline execution.
    fn try_replay(&self, e: &WaveEntry, ops: Vec<TaskOp>) -> Option<ExecOutcome> {
        let mut ctx = TaskCtx::new_deferred(self.sched.store.clone(), NodeId(e.node), self.mode);
        for op in ops {
            match op {
                TaskOp::Read {
                    matrix,
                    ti,
                    tj,
                    tile,
                } => {
                    let got = ctx.read_tile(&matrix, ti, tj).ok()?;
                    if !(Arc::ptr_eq(&got, &tile) || *got == *tile) {
                        return None;
                    }
                }
                TaskOp::Write {
                    matrix,
                    ti,
                    tj,
                    tile,
                } => ctx.write_tile(&matrix, ti, tj, tile).ok()?,
                TaskOp::Charge(w) => ctx.charge(w),
                TaskOp::ChargeMem(mb) => ctx.charge_mem_mb(mb),
                TaskOp::ChargeReadIo(io) => ctx.charge_read_io(io),
                TaskOp::ChargeWriteIo(io) => ctx.charge_write_io(io),
                TaskOp::ChargeSeconds(s) => ctx.charge_seconds(s),
                TaskOp::ChargeIoOps(n) => ctx.charge_io_ops(n),
            }
        }
        let (receipt, staged) = ctx.into_parts();
        Some(ExecOutcome {
            receipt,
            staged,
            error: None,
        })
    }

    /// The outcome for one assignment: a validated replay of its lookahead
    /// recording when available, else an inline run. Both paths produce
    /// bitwise-identical outcomes, so which one is taken — a host-timing
    /// artifact — is unobservable in the simulation.
    fn obtain_outcome(&self, e: &WaveEntry) -> ExecOutcome {
        if let Some(lease) = &self.pool {
            if let Some(rec) = lease.pool.take(lease, e.job, e.task) {
                if rec.error.is_none() {
                    if let Some(outcome) = self.try_replay(e, rec.ops) {
                        return outcome;
                    }
                }
            }
        }
        self.execute(e)
    }

    /// Inline execution with a deferred-write context: identical receipts
    /// and error points to [`Exec::execute`], but writes are staged for the
    /// scheduler to commit in canonical order. The spill-aware path
    /// resolves entries out of assignment order, so every write must go
    /// through staging or the placement RNG draw sequence would follow
    /// resolution order instead of canonical order.
    fn execute_deferred(&self, e: &WaveEntry) -> ExecOutcome {
        let mut ctx = TaskCtx::new_deferred(self.sched.store.clone(), NodeId(e.node), self.mode);
        let result = (self.dag.jobs[e.job].tasks[e.task].run)(&mut ctx);
        let (receipt, staged) = ctx.into_parts();
        ExecOutcome {
            receipt,
            staged,
            error: result.err(),
        }
    }

    /// [`Exec::obtain_outcome`] for the spill-aware path: the inline
    /// fallback stages its writes instead of committing them, so the
    /// resolve order is free while the commit order stays canonical.
    fn obtain_outcome_deferred(&self, e: &WaveEntry) -> ExecOutcome {
        if let Some(lease) = &self.pool {
            if let Some(rec) = lease.pool.take(lease, e.job, e.task) {
                if rec.error.is_none() {
                    if let Some(outcome) = self.try_replay(e, rec.ops) {
                        return outcome;
                    }
                }
            }
        }
        self.execute_deferred(e)
    }

    /// Residency oracle for one assignment: is its hinted dominant input
    /// currently demoted to the spill plane (a read now pays a synchronous
    /// readback)? Hint-less tasks count as resident.
    fn entry_input_spilled(&self, e: &WaveEntry) -> bool {
        self.dag.jobs[e.job].tasks[e.task]
            .locality_hint
            .as_ref()
            .is_some_and(|(m, ti, tj)| self.sched.store.tile_is_spilled(m, *ti, *tj))
    }

    /// The wave's spilled frontier: up to
    /// [`SchedulerConfig::prefetch_depth`] distinct demoted tiles the
    /// scheduler is about to want, scanned in demand order — first the
    /// fill's own still-unresolved entries (`pending`, as `(job, task)`
    /// pairs; their reads are next), then — only once every ready job's
    /// pending pool is drained, so the successors really are the next
    /// wave — the tasks of not-yet-ready successor jobs in index order
    /// (their reads of tiles *earlier* jobs produced — reused inputs
    /// like the `A` of every power iteration — already exist and may
    /// have spilled, while reads of tiles this fill is still producing
    /// simply aren't demoted yet and are skipped).
    fn prefetch_frontier(&self, pending: &[(usize, usize)]) -> Vec<(String, usize, usize)> {
        let depth = self.config.prefetch_depth;
        let mut frontier: Vec<(String, usize, usize)> = Vec::new();
        if depth == 0 {
            return frontier;
        }
        // Only tiles a not-yet-resolved task is about to read are
        // candidates: every one is still ahead of its demand read, so a
        // readmission can never waste budget on a tile the run has
        // already consumed (a whole-matrix sweep would re-fetch spilled
        // tiles that nothing reads again, evicting live ones to do it).
        // A task's declared read set enumerates those tiles in read
        // order; tasks without one contribute their locality hint.
        let consider = |job: usize, task: usize, frontier: &mut Vec<(String, usize, usize)>| {
            let t = &self.dag.jobs[job].tasks[task];
            let hint = t
                .read_set
                .is_empty()
                .then(|| t.locality_hint.clone())
                .flatten();
            for (m, i, j) in t.read_set.iter().cloned().chain(hint) {
                if frontier.len() >= depth {
                    return;
                }
                let key = (m, i, j);
                if !frontier.contains(&key)
                    && self.sched.store.tile_is_spilled(&key.0, key.1, key.2)
                {
                    frontier.push(key);
                }
            }
        };
        for &(job, task) in pending {
            if frontier.len() >= depth {
                return frontier;
            }
            consider(job, task, &mut frontier);
        }
        // Looking past the fill's own entries is the next wave's frontier
        // only once every ready job's pending pool is drained. Scanning
        // unassigned or successor tasks while ready work remains is
        // actively harmful: their reads are many fills away, every
        // intervening fill commits writes that evict what the scan
        // readmitted, and the next fill's scan readmits the same tiles
        // again — the prefetcher becomes a readback amplifier. (The
        // fill's own entries are immune: their reads land before any of
        // this fill's writes commit.)
        let ready_drained = self
            .jobs
            .iter()
            .all(|s| s.done || s.remaining_deps > 0 || s.pending.is_empty());
        if !ready_drained {
            return frontier;
        }
        for (j, state) in self.jobs.iter().enumerate() {
            if state.done || state.remaining_deps == 0 {
                continue;
            }
            for t in 0..self.dag.jobs[j].tasks.len() {
                if frontier.len() >= depth {
                    return frontier;
                }
                if !state.task_done[t] {
                    consider(j, t, &mut frontier);
                }
            }
        }
        frontier
    }

    /// Readmits the frontier's tiles from the spill plane. With a worker
    /// pool the readmissions run asynchronously under the prefetch lease,
    /// overlapping the wave's resolve phase; single-threaded runs readmit
    /// inline as one batch before resolution, ahead of the demand reads.
    /// Readmission replaces a demoted replica in place — no placement RNG
    /// draw — and errors are deliberately dropped: prefetch is a hint,
    /// and the next canonical read pays the readback it would have paid
    /// anyway. Staging is byte-capped at half the memory budget:
    /// readmitting more than the budget can hold evicts the very tiles
    /// just prefetched (and, worse, tiles the current wave still needs),
    /// turning the prefetch into extra readbacks instead of fewer.
    fn stage_prefetch(&mut self, frontier: Vec<(String, usize, usize)>) {
        if frontier.is_empty() {
            return;
        }
        let cap = self.sched.store.memory_budget().map(|b| b / 2);
        if self.prefetch_lease.is_none() {
            let mut spent = 0u64;
            for (m, ti, tj) in frontier {
                if cap.is_some_and(|c| spent >= c) {
                    break;
                }
                spent += self.sched.store.prefetch_tile(&m, ti, tj).unwrap_or(0);
            }
            return;
        }
        let spent = Arc::new(AtomicU64::new(0));
        let mut batch: Vec<(usize, usize, TaskFn)> = Vec::with_capacity(frontier.len());
        for (m, ti, tj) in frontier {
            let store = self.sched.store.clone();
            let spent = spent.clone();
            let run: TaskFn = Arc::new(move |_ctx: &mut TaskCtx| {
                if cap.is_some_and(|c| spent.load(Ordering::Relaxed) >= c) {
                    return Ok(());
                }
                if let Ok(bytes) = store.prefetch_tile(&m, ti, tj) {
                    spent.fetch_add(bytes, Ordering::Relaxed);
                }
                Ok(())
            });
            batch.push((0, self.prefetch_seq, run));
            self.prefetch_seq += 1;
        }
        let lease = self.prefetch_lease.as_ref().expect("checked above");
        lease
            .pool
            .enqueue(lease, batch, &self.sched.store, self.mode);
    }

    /// Applies one executed entry's effects, in canonical order: commit
    /// staged writes (replaying the DFS placement RNG draws a sequential
    /// run would make), book attempts and fault counters, resolve injected
    /// failures, charge stats, and schedule the completion event.
    fn finalize(
        &mut self,
        e: &WaveEntry,
        outcome: ExecOutcome,
        queue: &mut EventQueue<Event>,
    ) -> Result<()> {
        let ExecOutcome {
            mut receipt,
            staged,
            mut error,
        } = outcome;
        for w in staged {
            // A task that errored mid-logic still committed everything it
            // wrote before the error in a sequential run; writes staged
            // before the error point replay that.
            match self.sched.store.write_tile_arc(
                &w.matrix,
                w.ti,
                w.tj,
                w.tile,
                Some(NodeId(e.node)),
            ) {
                Ok(io) => receipt.write = receipt.write.add(io),
                Err(commit_err) => {
                    if error.is_none() {
                        error = Some(commit_err.into());
                    }
                    break;
                }
            }
        }
        self.jobs[e.job].attempts[e.task] = e.attempt;
        self.faults.task_attempts += 1;
        if e.is_backup {
            self.faults.speculative_launches += 1;
        } else if e.attempt > 1 {
            self.faults.retries += 1;
        }
        let injected_failure = self.failures.attempt_fails(e.job, e.task, e.attempt);
        let ok = error.is_none() && !injected_failure;
        if let Some(err) = &error {
            if let ClusterError::BlockLost { path, .. } = err {
                if !self.lost_blocks.contains(path) {
                    self.lost_blocks.push(path.clone());
                    self.faults.lost_block_events += 1;
                }
            }
            if e.attempt >= self.config.max_attempts {
                return Err(ClusterError::TaskFailed {
                    job: self.dag.jobs[e.job].name.clone(),
                    task: e.task,
                    attempts: e.attempt,
                    last_error: err.to_string(),
                });
            }
        }
        let duration = self
            .sched
            .hw
            .task_seconds(
                &self.sched.spec.instance,
                self.sched.spec.slots_per_node,
                &receipt,
                e.job,
                e.task,
                e.attempt - 1,
            )
            .max(1e-9);
        // Rework accounting: retries and backup copies re-execute work the
        // first attempt already did (DES-ordered accumulation, so the f64
        // sums are identical at any thread count).
        self.faults.total_task_s += duration;
        if e.attempt > 1 || e.is_backup {
            self.faults.rework_task_s += duration;
        }
        if self.trace.is_enabled() {
            // Phase fractions come from the noise-free model split and are
            // rescaled to the attempt's actual (noisy) duration, so phase
            // sums reproduce span durations — and hence the makespan —
            // exactly.
            let phases = self
                .sched
                .hw
                .task_phases(
                    &self.sched.spec.instance,
                    self.sched.spec.slots_per_node,
                    &receipt,
                )
                .scaled_to(duration);
            self.epoch_meta.insert(
                e.epoch,
                SpanMeta {
                    attempt: e.attempt,
                    is_backup: e.is_backup,
                    wave: self.wave,
                    phases,
                    read_bytes: receipt.read.bytes,
                    read_local_bytes: receipt.read.local_bytes,
                    write_bytes: receipt.write.bytes,
                    io_ops: receipt.io_ops,
                },
            );
        }
        self.jobs[e.job].stats.start_s = self.jobs[e.job].stats.start_s.min(queue.now().secs());
        self.jobs[e.job].stats.receipt = self.jobs[e.job].stats.receipt.add(receipt);
        queue.schedule_in(
            duration,
            Event::TaskFinish {
                job: e.job,
                task: e.task,
                attempt: e.attempt,
                epoch: e.epoch,
                node: e.node,
                slot: e.slot,
                ok,
            },
        );
        Ok(())
    }

    /// Fills every free slot with the best pending task. Each assignment
    /// is resolved (replayed from its lookahead recording or executed
    /// inline) and finalized on the spot, in slot order — exactly the
    /// `threads == 1` interleaving, which is the canonical semantics.
    /// Assignment decisions are insensitive to same-pass commits: a ready
    /// job's inputs come from jobs that finished before this pass, so
    /// locality lookups see the same placement either way.
    fn fill_slots(&mut self, queue: &mut EventQueue<Event>) -> Result<()> {
        self.spec_enqueue_ready();
        self.wave += 1;
        let nodes = self.sched.spec.nodes;
        let slots = self.sched.spec.slots_per_node;
        let now = queue.now();
        if self.config.spill_aware || self.config.prefetch_depth > 0 {
            return self.fill_slots_spill_aware(queue, now);
        }
        for node in 0..nodes {
            if !self.node_alive[node as usize] || self.doomed[node as usize] {
                continue;
            }
            for slot in 0..slots {
                let idx = (node * slots + slot) as usize;
                if self.slot_state[idx].is_some() {
                    continue;
                }
                let Some(entry) = self.assign(node, slot, now) else {
                    continue;
                };
                let outcome = self.obtain_outcome(&entry);
                self.finalize(&entry, outcome, queue)?;
            }
        }
        Ok(())
    }

    /// The spill-aware wave ([`SchedulerConfig::spill_aware`] /
    /// [`SchedulerConfig::prefetch_depth`]). Same observable semantics as
    /// the legacy loop, restructured into phases:
    ///
    /// 1. *Assign* every free slot in canonical node/slot order. Legal to
    ///    hoist because assignment decisions are insensitive to same-pass
    ///    commits (see [`Exec::fill_slots`]) — the entry sequence, epoch
    ///    numbering and pending-queue mutations are identical.
    /// 2. *Prefetch*: compute the wave frontier's spilled tiles and stage
    ///    their readmissions (pool-async with workers, else one inline
    ///    batch ahead of the demand reads).
    /// 3. *Resolve* the entries — resident-input entries first (stable
    ///    order within each class) when `spill_aware`. Reads are
    ///    order-insensitive: block service is stateless locality-ordered
    ///    replica selection, read receipts do not depend on cache or spill
    ///    state, and same-wave tasks never read each other's outputs (a
    ///    ready job's inputs are durable before the wave). Writes are
    ///    staged, not committed.
    /// 4. *Finalize* in canonical assignment order: staged writes commit
    ///    here, so the placement RNG draw sequence, receipt accumulation
    ///    order, fault bookkeeping and event schedule are bitwise those of
    ///    the legacy loop.
    ///
    /// Only host-side resolve order, spill-plane traffic and the
    /// (fingerprint-excluded) cache/spill counters differ.
    fn fill_slots_spill_aware(
        &mut self,
        queue: &mut EventQueue<Event>,
        now: SimTime,
    ) -> Result<()> {
        let nodes = self.sched.spec.nodes;
        let slots = self.sched.spec.slots_per_node;
        let mut entries: Vec<WaveEntry> = Vec::new();
        for node in 0..nodes {
            if !self.node_alive[node as usize] || self.doomed[node as usize] {
                continue;
            }
            for slot in 0..slots {
                let idx = (node * slots + slot) as usize;
                if self.slot_state[idx].is_some() {
                    continue;
                }
                if let Some(entry) = self.assign(node, slot, now) {
                    entries.push(entry);
                }
            }
        }
        // Residency snapshot before any resolution runs: spilled-input
        // entries resolve last from one consistent view.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        let mut spilled: Vec<bool> = vec![false; entries.len()];
        if self.config.spill_aware {
            spilled = entries
                .iter()
                .map(|e| self.entry_input_spilled(e))
                .collect();
            order.sort_by_key(|&i| spilled[i]);
        }
        let mut outcomes: Vec<Option<ExecOutcome>> = Vec::new();
        outcomes.resize_with(entries.len(), || None);
        // The prefetch stages at the resident/spilled boundary of the
        // resolve order: after it, readmissions cannot evict tiles the
        // resident-input entries still need; before the spilled-input
        // entries, an async prefetch gets the longest overlap with their
        // demand reads. Only the still-unresolved suffix of the wave
        // feeds the frontier — resolved entries' reads are already paid.
        // A wave with no spilled inputs degenerates to an end-of-wave
        // prefetch for the next wave's frontier.
        let mut prefetched = false;
        for (pos, &i) in order.iter().enumerate() {
            if !prefetched && spilled[i] {
                let pending: Vec<(usize, usize)> = order[pos..]
                    .iter()
                    .map(|&j| (entries[j].job, entries[j].task))
                    .collect();
                let frontier = self.prefetch_frontier(&pending);
                self.stage_prefetch(frontier);
                prefetched = true;
            }
            outcomes[i] = Some(self.obtain_outcome_deferred(&entries[i]));
        }
        if !prefetched {
            let frontier = self.prefetch_frontier(&[]);
            self.stage_prefetch(frontier);
        }
        for (entry, outcome) in entries.iter().zip(outcomes) {
            self.finalize(entry, outcome.expect("every entry resolved above"), queue)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn on_task_finish(
        &mut self,
        now: SimTime,
        job: usize,
        task: usize,
        attempt: u32,
        epoch: u64,
        node: u32,
        slot: u32,
        ok: bool,
        queue: &mut EventQueue<Event>,
    ) -> Result<()> {
        let idx = (node * self.sched.spec.slots_per_node + slot) as usize;
        let valid = matches!(self.slot_state[idx], Some(r) if r.epoch == epoch);
        if !valid {
            return Ok(()); // superseded by a node failure
        }
        let running = self.slot_state[idx].take().expect("checked above");
        if self.jobs[job].task_done[task] {
            // A speculative twin already completed this task; just free
            // the slot.
            return self.fill_slots(queue);
        }
        if ok {
            self.jobs[job].task_done[task] = true;
            if self.doomed[node as usize] {
                // The attempt beat the revocation deadline: gracefully
                // drained rather than lost.
                self.faults.drained_tasks += 1;
            }
            // Kill any still-running copies of this task. If a killed twin
            // started earlier, the completing copy is the backup — a
            // speculative win.
            let mut killed: Vec<(usize, Running)> = Vec::new();
            for (other_idx, other) in self.slot_state.iter_mut().enumerate() {
                if matches!(other, Some(r) if r.job == job && r.task == task) {
                    let twin = other.take().expect("matched Some above");
                    if twin.started < running.started {
                        self.faults.speculative_wins += 1;
                    }
                    killed.push((other_idx, twin));
                }
            }
            if self.trace.is_enabled() {
                let slots = self.sched.spec.slots_per_node as usize;
                for (twin_idx, twin) in &killed {
                    if twin.started < running.started {
                        self.trace.record_event(TraceEvent::SpeculativeWin {
                            t_s: now.secs(),
                            job,
                            task,
                        });
                    }
                    if let Some(m) = self.epoch_meta.remove(&twin.epoch) {
                        self.trace.record_task(TaskSpan {
                            job,
                            task,
                            attempt: m.attempt,
                            node: twin_idx / slots,
                            slot: twin_idx % slots,
                            start_s: twin.started.secs(),
                            end_s: now.secs(),
                            ok: false,
                            backup: m.is_backup,
                            killed: true,
                            wave: m.wave,
                            round: 0,
                            phases: m.phases.scaled_to(now.secs() - twin.started.secs()),
                            read_bytes: m.read_bytes,
                            read_local_bytes: m.read_local_bytes,
                            write_bytes: m.write_bytes,
                            io_ops: m.io_ops,
                        });
                    }
                }
                if let Some(m) = self.epoch_meta.remove(&epoch) {
                    self.trace.record_task(TaskSpan {
                        job,
                        task,
                        attempt,
                        node: node as usize,
                        slot: slot as usize,
                        start_s: running.started.secs(),
                        end_s: now.secs(),
                        ok: true,
                        backup: m.is_backup,
                        killed: false,
                        wave: m.wave,
                        round: 0,
                        phases: m.phases,
                        read_bytes: m.read_bytes,
                        read_local_bytes: m.read_local_bytes,
                        write_bytes: m.write_bytes,
                        io_ops: m.io_ops,
                    });
                }
            }
            self.jobs[job].stats.tasks.push(TaskStat {
                task,
                node,
                start_s: running.started.secs(),
                end_s: now.secs(),
                attempts: attempt,
                input_local: running.input_local,
            });
            self.jobs[job].unfinished_tasks -= 1;
            if self.jobs[job].unfinished_tasks == 0 && !self.jobs[job].done {
                self.jobs[job].done = true;
                self.jobs[job].stats.end_s = now.secs();
                if self.trace.is_enabled() {
                    self.trace.record_job(JobSpan {
                        index: job,
                        name: self.jobs[job].stats.name.clone(),
                        op_label: self.jobs[job].stats.op_label.clone(),
                        start_s: self.jobs[job].stats.start_s,
                        end_s: now.secs(),
                        round: 0,
                    });
                }
                self.finished.push(self.jobs[job].stats.clone());
                self.completed_jobs += 1;
                for &dep in &self.dependents[job] {
                    self.jobs[dep].remaining_deps -= 1;
                }
                self.zero_task_scan(now);
            }
        } else {
            if self.trace.is_enabled() {
                if let Some(m) = self.epoch_meta.remove(&epoch) {
                    self.trace.record_task(TaskSpan {
                        job,
                        task,
                        attempt,
                        node: node as usize,
                        slot: slot as usize,
                        start_s: running.started.secs(),
                        end_s: now.secs(),
                        ok: false,
                        backup: m.is_backup,
                        killed: false,
                        wave: m.wave,
                        round: 0,
                        phases: m.phases,
                        read_bytes: m.read_bytes,
                        read_local_bytes: m.read_local_bytes,
                        write_bytes: m.write_bytes,
                        io_ops: m.io_ops,
                    });
                }
            }
            if attempt >= self.config.max_attempts {
                return Err(ClusterError::TaskFailed {
                    job: self.dag.jobs[job].name.clone(),
                    task,
                    attempts: attempt,
                    last_error: "injected task failure".to_string(),
                });
            }
            // Requeue unless a twin copy is still in flight.
            let twin_running = self
                .slot_state
                .iter()
                .flatten()
                .any(|r| r.job == job && r.task == task);
            if !twin_running {
                self.jobs[job].pending.push_front(task);
            }
        }
        self.fill_slots(queue)
    }

    fn on_node_failure(&mut self, node: u32, queue: &mut EventQueue<Event>) -> Result<()> {
        // A plan may name a node this cluster doesn't have (e.g. a market
        // model sized for a larger fleet, or an elastic shrink between
        // iterations); ignore it rather than index out of bounds.
        if (node as usize) >= self.node_alive.len() || !self.node_alive[node as usize] {
            return Ok(());
        }
        self.node_alive[node as usize] = false;
        self.doomed[node as usize] = false;
        self.faults.node_deaths += 1;
        self.dead_nodes.push(node);
        // Storage consequences (re-replication of survivors).
        match self.sched.store.dfs().kill_node(NodeId(node)) {
            Ok(receipt) => {
                self.faults.rereplicated_bytes += receipt.bytes;
                self.trace.record_event(TraceEvent::NodeFailure {
                    t_s: queue.now().secs(),
                    node: node as usize,
                    rereplicated_bytes: receipt.bytes,
                });
            }
            Err(e) => return Err(ClusterError::from(e)),
        }
        self.evict_running(node, queue.now(), false);
        if !self.node_alive.iter().any(|&a| a) {
            return Err(ClusterError::InvalidDag(
                "all nodes failed; run cannot complete".to_string(),
            ));
        }
        self.fill_slots(queue)
    }

    /// Kills every attempt in flight on `node`: traces the truncated spans
    /// and requeues tasks that are neither done nor running elsewhere.
    /// `revoked` attributes the loss to a spot revocation in the counters.
    fn evict_running(&mut self, node: u32, now: SimTime, revoked: bool) {
        let slots = self.sched.spec.slots_per_node;
        for slot in 0..slots {
            let idx = (node * slots + slot) as usize;
            if let Some(r) = self.slot_state[idx].take() {
                if revoked {
                    self.faults.lost_tasks += 1;
                }
                if self.trace.is_enabled() {
                    if let Some(m) = self.epoch_meta.remove(&r.epoch) {
                        let cut = now.secs();
                        self.trace.record_task(TaskSpan {
                            job: r.job,
                            task: r.task,
                            attempt: m.attempt,
                            node: node as usize,
                            slot: slot as usize,
                            start_s: r.started.secs(),
                            end_s: cut,
                            ok: false,
                            backup: m.is_backup,
                            killed: true,
                            wave: m.wave,
                            round: 0,
                            phases: m.phases.scaled_to(cut - r.started.secs()),
                            read_bytes: m.read_bytes,
                            read_local_bytes: m.read_local_bytes,
                            write_bytes: m.write_bytes,
                            io_ops: m.io_ops,
                        });
                    }
                }
                let twin_running = self
                    .slot_state
                    .iter()
                    .flatten()
                    .any(|o| o.job == r.job && o.task == r.task);
                if !self.jobs[r.job].task_done[r.task] && !twin_running {
                    self.jobs[r.job].pending.push_front(r.task);
                }
            }
        }
    }

    /// Revocation warning: mark the victims doomed (no new assignments;
    /// in-flight attempts drain) and spend the lead window proactively
    /// copying blocks that live only on doomed nodes to survivors, within
    /// the byte budget the victims' aggregate NIC bandwidth allows.
    fn on_revocation_warning(&mut self, idx: usize, queue: &mut EventQueue<Event>) -> Result<()> {
        let rev = &self.failures.revocations[idx];
        let lead_s = rev.warning_lead_s;
        let mut victims: Vec<NodeId> = Vec::new();
        for &node in &rev.nodes {
            let n = node as usize;
            if n >= self.node_alive.len() || !self.node_alive[n] || self.doomed[n] {
                continue;
            }
            self.doomed[n] = true;
            victims.push(NodeId(node));
        }
        if victims.is_empty() {
            return Ok(());
        }
        let budget =
            (lead_s * self.sched.spec.instance.net_mbs * 1e6 * victims.len() as f64) as u64;
        let receipt = self
            .sched
            .store
            .dfs()
            .drain_nodes(&victims, budget)
            .map_err(ClusterError::from)?;
        self.faults.drained_bytes += receipt.bytes;
        self.trace.record_event(TraceEvent::RevocationWarning {
            t_s: queue.now().secs(),
            nodes: victims.iter().map(|n| n.0 as usize).collect(),
            drained_bytes: receipt.bytes,
        });
        Ok(())
    }

    /// A bulk revocation takes effect: every still-live victim dies at the
    /// same instant (one correlated DFS event, so re-replication cannot
    /// lean on co-revoked peers), their in-flight attempts are lost, and
    /// survivors pick up the requeued work.
    fn on_revocation(&mut self, idx: usize, queue: &mut EventQueue<Event>) -> Result<()> {
        let rev = &self.failures.revocations[idx];
        let mut victims: Vec<u32> = Vec::new();
        for &node in &rev.nodes {
            let n = node as usize;
            if n >= self.node_alive.len() || !self.node_alive[n] {
                continue;
            }
            if !victims.contains(&node) {
                victims.push(node);
            }
        }
        if victims.is_empty() {
            return Ok(());
        }
        self.faults.revocations += 1;
        self.faults.revoked_nodes += victims.len() as u64;
        for &node in &victims {
            self.node_alive[node as usize] = false;
            self.doomed[node as usize] = false;
            self.dead_nodes.push(node);
        }
        let ids: Vec<NodeId> = victims.iter().map(|&n| NodeId(n)).collect();
        match self.sched.store.dfs().kill_nodes(&ids) {
            Ok(receipt) => {
                self.faults.rereplicated_bytes += receipt.bytes;
                self.trace.record_event(TraceEvent::Revocation {
                    t_s: queue.now().secs(),
                    nodes: victims.iter().map(|&n| n as usize).collect(),
                    rereplicated_bytes: receipt.bytes,
                });
            }
            Err(e) => return Err(ClusterError::from(e)),
        }
        for &node in &victims {
            self.evict_running(node, queue.now(), true);
        }
        if !self.node_alive.iter().any(|&a| a) {
            return Err(ClusterError::InvalidDag(
                "all nodes failed; run cannot complete".to_string(),
            ));
        }
        self.fill_slots(queue)
    }

    /// The run report of a completed execution.
    fn report(self) -> RunReport {
        let makespan_s = self.makespan.secs();
        // Round-local makespan: the trace shifts it by the active round
        // offset onto the global timeline.
        self.trace.set_makespan(makespan_s);
        let spec = self.sched.spec;
        RunReport {
            instance: spec.instance.name.to_string(),
            nodes: spec.nodes,
            slots: spec.slots_per_node,
            jobs: self.finished,
            makespan_s,
            billed_hours: billed_hours(self.sched.billing, makespan_s),
            cost_dollars: cluster_cost(
                self.sched.billing,
                spec.nodes,
                spec.instance.price_per_hour,
                makespan_s,
            ),
            faults: self.faults,
        }
    }

    /// Wraps a terminal error with the state accumulated up to it.
    fn into_failure(self, error: ClusterError) -> RunFailure {
        self.trace.set_makespan(self.makespan.secs());
        let failed = match &error {
            ClusterError::TaskFailed { job, task, .. } => Some((job.clone(), *task)),
            _ => None,
        };
        RunFailure {
            error,
            failed,
            lost_blocks: self.lost_blocks,
            dead_nodes: self.dead_nodes,
            completed_jobs: self.finished,
            makespan_s: self.makespan.secs(),
            faults: self.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::job::{Job, Task};
    use cumulon_matrix::ops::Work;
    use cumulon_matrix::{MatrixMeta, Tile};

    fn cluster(nodes: u32, slots: u32) -> Cluster {
        let mut c =
            Cluster::provision(ClusterSpec::named("m1.large", nodes, slots).unwrap()).unwrap();
        c.set_billing(BillingPolicy::HourlyCeil);
        c
    }

    /// A job of `n` cpu-burning tasks, each charging `flops`.
    fn burn_job(name: &str, n: usize, flops: f64) -> Job {
        let tasks = (0..n)
            .map(|_| {
                Task::new(move |ctx| {
                    ctx.charge(Work {
                        flops,
                        bytes_in: 0.0,
                        bytes_out: 0.0,
                    });
                    Ok(())
                })
            })
            .collect();
        Job::new(name, "burn", tasks)
    }

    #[test]
    fn single_job_runs_in_waves() {
        let c = cluster(2, 2); // 4 slots
        let mut dag = JobDag::new();
        dag.push(burn_job("b", 8, 1e9), vec![]);
        let r = c.run(&dag, ExecMode::Real).unwrap();
        assert_eq!(r.total_tasks(), 8);
        let job = &r.jobs[0];
        assert_eq!(job.tasks.len(), 8);
        // 8 tasks over 4 slots = 2 waves; makespan ≈ 2 × task time.
        let mean = job.mean_task_s();
        assert!(
            r.makespan_s > 1.5 * mean && r.makespan_s < 3.0 * mean,
            "makespan {} vs mean task {mean}",
            r.makespan_s
        );
    }

    #[test]
    fn dependencies_serialize_jobs() {
        let c = cluster(2, 2);
        let mut dag = JobDag::new();
        let a = dag.push(burn_job("a", 4, 1e9), vec![]);
        dag.push(burn_job("b", 4, 1e9), vec![a]);
        let r = c.run(&dag, ExecMode::Real).unwrap();
        let ja = r.job("a").unwrap();
        let jb = r.job("b").unwrap();
        assert!(jb.start_s >= ja.end_s, "dependent job must wait");
    }

    #[test]
    fn independent_jobs_share_slots() {
        let c = cluster(4, 2);
        let mut dag = JobDag::new();
        dag.push(burn_job("a", 4, 1e9), vec![]);
        dag.push(burn_job("b", 4, 1e9), vec![]);
        let r = c.run(&dag, ExecMode::Real).unwrap();
        let ja = r.job("a").unwrap();
        let jb = r.job("b").unwrap();
        // 8 slots, 8 tasks total: both jobs run in the first wave.
        assert!(jb.start_s < ja.end_s);
    }

    #[test]
    fn more_nodes_shorter_makespan() {
        let mut times = Vec::new();
        for nodes in [1, 2, 4] {
            let c = cluster(nodes, 2);
            let mut dag = JobDag::new();
            dag.push(burn_job("b", 16, 2e9), vec![]);
            times.push(c.run(&dag, ExecMode::Real).unwrap().makespan_s);
        }
        assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
    }

    #[test]
    fn zero_task_jobs_complete() {
        let c = cluster(1, 1);
        let mut dag = JobDag::new();
        let a = dag.push(Job::new("empty", "nop", vec![]), vec![]);
        let b = dag.push(burn_job("b", 1, 1e8), vec![a]);
        let c2 = dag.push(Job::new("tail", "nop", vec![]), vec![b]);
        assert_eq!(c2, 2);
        let r = c.run(&dag, ExecMode::Real).unwrap();
        assert_eq!(r.jobs.len(), 3);
    }

    #[test]
    fn task_error_retries_then_fails_run() {
        let c = cluster(1, 1);
        let mut dag = JobDag::new();
        let tasks = vec![Task::new(|_| {
            Err(ClusterError::Kernel("always broken".into()))
        })];
        dag.push(Job::new("bad", "x", tasks), vec![]);
        let err = c.run(&dag, ExecMode::Real).unwrap_err();
        assert!(
            matches!(err, ClusterError::TaskFailed { attempts: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn injected_failures_retry_and_succeed() {
        let c = cluster(2, 2);
        let mut dag = JobDag::new();
        dag.push(burn_job("flaky", 12, 1e9), vec![]);
        let failures = FailurePlan {
            task_failure_prob: 0.3,
            seed: 5,
            ..Default::default()
        };
        let r = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        let job = &r.jobs[0];
        assert_eq!(job.tasks.len(), 12, "every task eventually succeeds");
        assert!(
            job.retries() > 0,
            "with p=0.3 over 12 tasks some retries are expected"
        );
    }

    #[test]
    fn certain_failure_exhausts_attempts() {
        let c = cluster(1, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("doomed", 1, 1e8), vec![]);
        let failures = FailurePlan {
            task_failure_prob: 1.0,
            seed: 1,
            ..Default::default()
        };
        let err = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap_err();
        assert!(matches!(err, ClusterError::TaskFailed { .. }));
    }

    #[test]
    fn node_failure_requeues_and_completes() {
        let c = cluster(3, 1);
        // Long tasks so the failure lands mid-flight.
        let mut dag = JobDag::new();
        dag.push(burn_job("long", 6, 5e10), vec![]);
        let probe = c.run(&dag, ExecMode::Real).unwrap();
        let mid = probe.makespan_s / 3.0;
        let failures = FailurePlan {
            node_failures: vec![(mid, 2)],
            ..Default::default()
        };
        let r = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        assert_eq!(r.jobs[0].tasks.len(), 6);
        assert!(
            r.jobs[0]
                .tasks
                .iter()
                .all(|t| t.node != 2 || t.end_s <= mid),
            "no task may finish on the dead node after the failure"
        );
        assert!(
            r.makespan_s > probe.makespan_s,
            "losing a node must cost time"
        );
    }

    #[test]
    fn all_nodes_dead_errors() {
        let c = cluster(1, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("b", 4, 1e11), vec![]);
        let failures = FailurePlan {
            node_failures: vec![(1.0, 0)],
            ..Default::default()
        };
        let err = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidDag(_)), "{err}");
    }

    #[test]
    fn bulk_revocation_drains_and_completes() {
        let c = cluster(4, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("long", 8, 5e10), vec![]);
        let probe = c.run(&dag, ExecMode::Real).unwrap();
        let mid = probe.makespan_s / 2.0;
        let failures = FailurePlan {
            revocations: vec![Revocation {
                at_s: mid,
                nodes: vec![2, 3],
                warning_lead_s: mid / 2.0,
            }],
            ..Default::default()
        };
        let r = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        assert_eq!(r.faults.revocations, 1);
        assert_eq!(r.faults.revoked_nodes, 2);
        assert_eq!(r.jobs[0].tasks.len(), 8);
        assert!(
            r.jobs[0]
                .tasks
                .iter()
                .all(|t| (t.node != 2 && t.node != 3) || t.end_s <= mid),
            "no task may finish on a revoked node after the revocation"
        );
        assert!(
            r.makespan_s > probe.makespan_s,
            "losing half the fleet must cost time"
        );
        // The warning stopped new assignments to doomed nodes, so any task
        // still running there at revocation counts as lost, and work that
        // beat the deadline counts as drained.
        assert!(r.faults.drained_tasks + r.faults.lost_tasks > 0);
    }

    #[test]
    fn revocation_without_warning_still_completes() {
        let c = cluster(3, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("long", 6, 5e10), vec![]);
        let probe = c.run(&dag, ExecMode::Real).unwrap();
        let failures = FailurePlan {
            revocations: vec![Revocation {
                at_s: probe.makespan_s / 3.0,
                nodes: vec![0],
                warning_lead_s: 0.0,
            }],
            ..Default::default()
        };
        let r = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        assert_eq!(r.faults.revocations, 1);
        assert_eq!(r.faults.revoked_nodes, 1);
        // No lead window: nothing was drained ahead of the kill.
        assert_eq!(r.faults.drained_bytes, 0);
        assert_eq!(r.jobs[0].tasks.len(), 6);
    }

    #[test]
    fn out_of_range_revocation_and_failure_nodes_are_ignored() {
        let c = cluster(2, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("b", 4, 1e10), vec![]);
        let failures = FailurePlan {
            node_failures: vec![(1.0, 99)],
            revocations: vec![Revocation {
                at_s: 2.0,
                nodes: vec![7, 99],
                warning_lead_s: 1.0,
            }],
            ..Default::default()
        };
        let r = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        // The revocation reclaimed nothing real, so it does not count (the
        // same rule keeps re-fired revocations from double-counting in
        // recovery rounds).
        assert_eq!(r.faults.revocations, 0);
        assert_eq!(r.faults.revoked_nodes, 0);
        assert_eq!(r.faults.node_deaths, 0);
        assert_eq!(r.jobs[0].tasks.len(), 4);
    }

    #[test]
    fn revoking_every_node_errors() {
        let c = cluster(2, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("b", 4, 1e11), vec![]);
        let failures = FailurePlan {
            revocations: vec![Revocation {
                at_s: 1.0,
                nodes: vec![0, 1],
                warning_lead_s: 0.5,
            }],
            ..Default::default()
        };
        let err = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap_err();
        assert!(matches!(err, ClusterError::InvalidDag(_)), "{err}");
    }

    #[test]
    fn revocation_is_deterministic_across_threads() {
        let mk = || {
            let c = cluster(4, 2);
            let mut dag = JobDag::new();
            dag.push(burn_job("a", 10, 2e10), vec![]);
            dag.push(burn_job("b", 6, 1e10), vec![0]);
            (c, dag)
        };
        let failures = FailurePlan {
            revocations: vec![Revocation {
                at_s: 30.0,
                nodes: vec![1, 2],
                warning_lead_s: 10.0,
            }],
            ..Default::default()
        };
        let (c1, dag1) = mk();
        let r1 = c1
            .run_with(
                &dag1,
                ExecMode::Real,
                SchedulerConfig {
                    threads: 1,
                    ..Default::default()
                },
                &failures,
            )
            .unwrap();
        let (cn, dagn) = mk();
        let rn = cn
            .run_with(
                &dagn,
                ExecMode::Real,
                SchedulerConfig {
                    threads: 4,
                    ..Default::default()
                },
                &failures,
            )
            .unwrap();
        assert_eq!(r1.fingerprint(), rn.fingerprint());
    }

    #[test]
    fn billing_in_report() {
        let c = cluster(2, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("b", 2, 1e9), vec![]);
        let r = c.run(&dag, ExecMode::Real).unwrap();
        assert_eq!(r.billed_hours, 1.0);
        let price = crate::instances::by_name("m1.large")
            .unwrap()
            .price_per_hour;
        assert!((r.cost_dollars - 2.0 * price).abs() < 1e-9);
    }

    #[test]
    fn tile_tasks_move_real_data() {
        let c = cluster(2, 2);
        let meta = MatrixMeta::new(4, 4, 4);
        c.store().register("in", meta).unwrap();
        c.store()
            .write_tile(
                "in",
                0,
                0,
                &Tile::dense(cumulon_matrix::DenseTile::identity(4)),
                None,
            )
            .unwrap();
        c.store().register("out", meta).unwrap();
        let mut dag = JobDag::new();
        let task = Task::new(|ctx| {
            let t = ctx.read_tile("in", 0, 0)?;
            let doubled = t.elementwise(&t, cumulon_matrix::tile::ElemOp::Add)?;
            ctx.write_tile("out", 0, 0, &doubled)?;
            Ok(())
        })
        .with_locality("in", 0, 0);
        dag.push(Job::new("double", "elem", vec![task]), vec![]);
        let r = c.run(&dag, ExecMode::Real).unwrap();
        assert_eq!(r.jobs[0].tasks.len(), 1);
        let out = c.store().get_local("out").unwrap();
        assert_eq!(out.sum(), 8.0);
        assert!(r.jobs[0].receipt.read.bytes > 0);
        assert!(r.jobs[0].receipt.write.bytes > 0);
    }

    /// Triple-plane equivalence at the executor level: the same faulty
    /// tile workload on the handle plane, the materialize-bytes plane,
    /// and the handle plane under a memory budget tight enough to force
    /// constant eviction must produce the same report fingerprint and
    /// the same output bits, at one worker thread and at several. Only
    /// the budgeted arms may touch the spill path.
    #[test]
    fn spill_pressure_and_payload_planes_share_one_fingerprint() {
        use cumulon_matrix::tile::ElemOp;

        // (threads, budget bytes, materialize) -> (fingerprint+output, evictions)
        let run = |threads: usize, budget: u64, materialize: bool| {
            let c = cluster(3, 2);
            c.store().set_materialize_bytes(materialize);
            if budget > 0 {
                c.store()
                    .set_memory_budget(&cumulon_dfs::SpillConfig::budgeted(budget))
                    .unwrap();
            }
            let meta = MatrixMeta::new(16, 16, 4);
            c.store().register("A", meta).unwrap();
            for ti in 0..4 {
                for tj in 0..4 {
                    let t = cumulon_matrix::DenseTile::from_fn(4, 4, |i, j| {
                        (ti * 64 + tj * 16 + i * 4 + j) as f64 * 0.25 - 3.0
                    });
                    c.store()
                        .write_tile("A", ti, tj, &Tile::dense(t), None)
                        .unwrap();
                }
            }
            c.store().register("B", meta).unwrap();
            c.store().register("C", MatrixMeta::new(4, 16, 4)).unwrap();
            let mut dag = JobDag::new();
            let doubles = (0..16usize)
                .map(|i| {
                    let (ti, tj) = (i / 4, i % 4);
                    Task::new(move |ctx| {
                        ctx.charge(Work {
                            flops: 2e10,
                            bytes_in: 0.0,
                            bytes_out: 0.0,
                        });
                        let t = ctx.read_tile("A", ti, tj)?;
                        let d = t.elementwise(&t, ElemOp::Add)?;
                        ctx.write_tile("B", ti, tj, &d)?;
                        Ok(())
                    })
                    .with_locality("A", ti, tj)
                })
                .collect();
            dag.push(Job::new("double", "elem", doubles), vec![]);
            let folds = (0..4usize)
                .map(|tj| {
                    Task::new(move |ctx| {
                        ctx.charge(Work {
                            flops: 1e10,
                            bytes_in: 0.0,
                            bytes_out: 0.0,
                        });
                        let mut acc = Tile::dense(cumulon_matrix::DenseTile::zeros(4, 4));
                        for ti in 0..4 {
                            let t = ctx.read_tile("B", ti, tj)?;
                            acc = t.elementwise(&acc, ElemOp::Add)?;
                        }
                        ctx.write_tile("C", 0, tj, &acc)?;
                        Ok(())
                    })
                })
                .collect();
            dag.push(Job::new("fold", "elem", folds), vec![0]);
            let failures = FailurePlan {
                revocations: vec![Revocation {
                    at_s: 25.0,
                    nodes: vec![2],
                    warning_lead_s: 5.0,
                }],
                ..Default::default()
            };
            let r = c
                .run_with(
                    &dag,
                    ExecMode::Real,
                    SchedulerConfig {
                        threads,
                        ..Default::default()
                    },
                    &failures,
                )
                .unwrap();
            let out = c.store().get_local("C").unwrap();
            let evictions = c.store().dfs().spill_stats().map_or(0, |s| s.evictions);
            (
                format!("{} out={:016x}", r.fingerprint(), out.sum().to_bits()),
                evictions,
            )
        };

        // ~150 wire bytes per 4x4 dense tile, 36 tiles in flight: a 600 B
        // budget keeps only a handful resident and evicts continuously.
        let (base, ev) = run(1, 0, false);
        assert_eq!(ev, 0, "no budget, no spill plane");
        for (threads, budget, materialize) in [
            (4, 0, false),
            (1, 0, true),
            (4, 0, true),
            (1, 600, false),
            (4, 600, false),
        ] {
            let (fp, ev) = run(threads, budget, materialize);
            assert_eq!(
                fp, base,
                "plane divergence at threads={threads} budget={budget} materialize={materialize}"
            );
            if budget > 0 {
                assert!(
                    ev > 0,
                    "tight budget must actually evict (threads={threads})"
                );
            } else {
                assert_eq!(ev, 0);
            }
        }
    }

    /// Spill-aware resolution + frontier prefetch must be invisible in the
    /// fingerprint (assignment, receipts, placement, simulated time all
    /// unchanged) while strictly reducing the synchronous readback volume
    /// — the bytes a task's own read had to pull back from the spill
    /// plane's blob store on demand.
    #[test]
    fn spill_aware_prefetch_cuts_readbacks_without_moving_the_fingerprint() {
        use cumulon_matrix::tile::ElemOp;

        let run = |config: SchedulerConfig| {
            let c = cluster(3, 2);
            c.store()
                .set_memory_budget(&cumulon_dfs::SpillConfig::budgeted(1200))
                .unwrap();
            let meta = MatrixMeta::new(16, 16, 4);
            c.store().register("A", meta).unwrap();
            for ti in 0..4 {
                for tj in 0..4 {
                    let t = cumulon_matrix::DenseTile::from_fn(4, 4, |i, j| {
                        (ti * 64 + tj * 16 + i * 4 + j) as f64 * 0.25 - 3.0
                    });
                    c.store()
                        .write_tile("A", ti, tj, &Tile::dense(t), None)
                        .unwrap();
                }
            }
            c.store().register("B", meta).unwrap();
            c.store().register("C", MatrixMeta::new(4, 16, 4)).unwrap();
            let mut dag = JobDag::new();
            let doubles = (0..16usize)
                .map(|i| {
                    let (ti, tj) = (i / 4, i % 4);
                    Task::new(move |ctx| {
                        ctx.charge(Work {
                            flops: 2e10,
                            bytes_in: 0.0,
                            bytes_out: 0.0,
                        });
                        let t = ctx.read_tile("A", ti, tj)?;
                        let d = t.elementwise(&t, ElemOp::Add)?;
                        ctx.write_tile("B", ti, tj, &d)?;
                        Ok(())
                    })
                    .with_locality("A", ti, tj)
                })
                .collect();
            dag.push(Job::new("double", "elem", doubles), vec![]);
            let folds = (0..4usize)
                .map(|tj| {
                    Task::new(move |ctx| {
                        let mut acc = Tile::dense(cumulon_matrix::DenseTile::zeros(4, 4));
                        for ti in 0..4 {
                            let t = ctx.read_tile("B", ti, tj)?;
                            acc = t.elementwise(&acc, ElemOp::Add)?;
                        }
                        ctx.write_tile("C", 0, tj, &acc)?;
                        Ok(())
                    })
                })
                .collect();
            dag.push(Job::new("fold", "elem", folds), vec![0]);
            let r = c
                .run_with(&dag, ExecMode::Real, config, &FailurePlan::default())
                .unwrap();
            let out = c.store().get_local("C").unwrap();
            let stats = c.store().dfs().spill_stats().expect("budget is set");
            (
                format!("{} out={:016x}", r.fingerprint(), out.sum().to_bits()),
                stats,
            )
        };

        let base = SchedulerConfig {
            threads: 1,
            ..Default::default()
        };
        let (fp_off, off) = run(base);
        assert_eq!(off.readback_bytes_avoided, 0, "nothing prefetched when off");
        assert!(off.readback_bytes_total > 0, "budget must force readbacks");

        let (fp_on, on) = run(base.with_prefetch(3));
        assert_eq!(
            fp_on, fp_off,
            "spill-awareness must not move the fingerprint"
        );
        assert!(on.prefetched_files > 0, "frontier prefetch must fire");
        assert!(
            on.readback_bytes_avoided > 0,
            "prefetched tiles must be read"
        );
        let sync_on = on.readback_bytes_total - on.readback_bytes_avoided;
        assert!(
            sync_on < off.readback_bytes_total,
            "on-demand readback bytes must strictly drop: {sync_on} vs {}",
            off.readback_bytes_total
        );

        // Worker threads race the prefetch against the wave, so counters
        // may differ run to run — but the fingerprint may not.
        let (fp_threaded, _) = run(base.with_prefetch(3).with_threads(4));
        assert_eq!(
            fp_threaded, fp_off,
            "threaded prefetch must stay transparent"
        );
    }

    #[test]
    fn try_run_reports_lost_blocks() {
        use cumulon_dfs::DfsConfig;
        // Replication 1: killing the tile's only holder loses the block.
        let c = Cluster::provision_with(
            ClusterSpec::named("m1.large", 3, 1).unwrap(),
            HardwareModel::default(),
            DfsConfig {
                replication: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let meta = MatrixMeta::new(2, 2, 2);
        c.store().register("A", meta).unwrap();
        c.store()
            .write_tile("A", 0, 0, &Tile::zeros(2, 2), Some(NodeId(2)))
            .unwrap();
        c.store().dfs().kill_node(NodeId(2)).unwrap();
        let mut dag = JobDag::new();
        let task = Task::new(|ctx| {
            ctx.read_tile("A", 0, 0)?;
            Ok(())
        });
        dag.push(Job::new("r#0", "read", vec![task]), vec![]);
        let failure = c
            .try_run_with(
                &dag,
                ExecMode::Real,
                SchedulerConfig::default(),
                &FailurePlan::default(),
            )
            .unwrap_err();
        assert!(
            matches!(failure.error, ClusterError::TaskFailed { .. }),
            "{failure}"
        );
        assert_eq!(failure.failed, Some(("r#0".to_string(), 0)));
        assert_eq!(failure.lost_blocks, vec!["/matrix/A/0_0".to_string()]);
        assert_eq!(failure.faults.lost_block_events, 1);
        assert!(failure.completed_jobs.is_empty());
    }

    #[test]
    fn fault_counters_in_report() {
        let c = cluster(2, 2);
        let mut dag = JobDag::new();
        dag.push(burn_job("flaky", 12, 1e9), vec![]);
        let failures = FailurePlan {
            task_failure_prob: 0.3,
            seed: 5,
            ..Default::default()
        };
        let r = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        assert!(r.faults.retries > 0);
        assert_eq!(r.faults.retries, r.jobs[0].retries() as u64);
        assert_eq!(
            r.faults.task_attempts,
            12 + r.faults.retries,
            "attempts = tasks + retries with no speculation"
        );
        assert!(r.summary().contains("retries"));
    }

    #[test]
    fn dead_node_stays_dead_across_runs() {
        let c = cluster(3, 1);
        let mut dag = JobDag::new();
        dag.push(burn_job("long", 6, 5e10), vec![]);
        let failures = FailurePlan {
            node_failures: vec![(1.0, 2)],
            ..Default::default()
        };
        let r1 = c
            .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
            .unwrap();
        assert_eq!(r1.faults.node_deaths, 1);
        // A second run on the same cluster must not place work on node 2.
        let r2 = c.run(&dag, ExecMode::Real).unwrap();
        assert!(
            r2.jobs[0].tasks.iter().all(|t| t.node != 2),
            "node 2 is dead; nothing may run there"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let c = cluster(3, 2);
            let mut dag = JobDag::new();
            dag.push(burn_job("b", 10, 3e9), vec![]);
            c.run(&dag, ExecMode::Real).unwrap().makespan_s
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};
    use crate::hw::{HardwareModel, NoiseModel};
    use crate::job::{ExecMode, Job, JobDag, Task};
    use cumulon_dfs::DfsConfig;
    use cumulon_matrix::ops::Work;

    fn noisy_cluster(nodes: u32, slots: u32, sigma: f64, seed: u64) -> Cluster {
        let hw = HardwareModel {
            noise: NoiseModel { sigma, seed },
            ..HardwareModel::default()
        };
        Cluster::provision_with(
            ClusterSpec::named("m1.large", nodes, slots).unwrap(),
            hw,
            DfsConfig::default(),
        )
        .unwrap()
    }

    fn burn_dag(tasks: usize, flops: f64) -> JobDag {
        let mut dag = JobDag::new();
        let tasks = (0..tasks)
            .map(|_| {
                Task::new(move |ctx| {
                    ctx.charge(Work {
                        flops,
                        bytes_in: 0.0,
                        bytes_out: 0.0,
                    });
                    Ok(())
                })
            })
            .collect();
        dag.push(Job::new("burn", "burn", tasks), vec![]);
        dag
    }

    #[test]
    fn speculation_cuts_the_straggler_tail() {
        // Heavy-tailed task noise, single wave: the slowest draw dominates
        // the makespan unless a backup with a fresh draw overtakes it.
        let mut improved = 0;
        let mut regressed = 0;
        for seed in 0..8u64 {
            let dag = burn_dag(8, 2e10);
            let base = noisy_cluster(4, 2, 0.8, seed)
                .run_with(
                    &dag,
                    ExecMode::Real,
                    SchedulerConfig::default(),
                    &FailurePlan::default(),
                )
                .unwrap()
                .makespan_s;
            let spec = noisy_cluster(4, 2, 0.8, seed)
                .run_with(
                    &dag,
                    ExecMode::Real,
                    SchedulerConfig::with_speculation(),
                    &FailurePlan::default(),
                )
                .unwrap()
                .makespan_s;
            if spec < base * 0.999 {
                improved += 1;
            }
            if spec > base * 1.001 {
                regressed += 1;
            }
        }
        assert!(
            improved >= 4,
            "speculation should usually help: improved {improved}/8"
        );
        assert_eq!(
            regressed, 0,
            "first-copy-wins means speculation never hurts"
        );
    }

    #[test]
    fn speculation_preserves_task_accounting() {
        let dag = burn_dag(6, 1e10);
        let report = noisy_cluster(3, 2, 1.0, 42)
            .run_with(
                &dag,
                ExecMode::Real,
                SchedulerConfig::with_speculation(),
                &FailurePlan::default(),
            )
            .unwrap();
        // Exactly one completion per task, even when twins were launched.
        let mut seen: Vec<usize> = report.jobs[0].tasks.iter().map(|t| t.task).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn speculation_off_by_default() {
        let config = SchedulerConfig::default();
        assert!(!config.speculative);
        assert!(!config.ignore_locality);
        assert_eq!(config.speculation_factor, 1.5);
    }

    #[test]
    fn ignore_locality_reduces_local_reads() {
        use cumulon_dfs::dfs::NodeId;
        use cumulon_matrix::{MatrixMeta, Tile};

        let run = |ignore: bool| {
            let c = noisy_cluster(4, 1, 0.0, 0);
            // One tile per node, single replica, so locality is scarce.
            let meta = MatrixMeta::new(8, 8, 2); // 4x4 grid = 16 tiles
            let store = c.store();
            store.register("A", meta).unwrap();
            for (i, (ti, tj)) in meta.grid().iter().enumerate() {
                let writer = NodeId((i % 4) as u32);
                // Replication 3 by default; tighten by writing through a
                // replication-1 path is not available, so rely on hints.
                store
                    .write_tile("A", ti, tj, &Tile::zeros(2, 2), Some(writer))
                    .unwrap();
            }
            let mut dag = JobDag::new();
            let tasks = meta
                .grid()
                .iter()
                .map(|(ti, tj)| {
                    Task::new(move |ctx| {
                        ctx.read_tile("A", ti, tj)?;
                        Ok(())
                    })
                    .with_locality("A", ti, tj)
                })
                .collect();
            dag.push(Job::new("readers", "read", tasks), vec![]);
            let config = SchedulerConfig {
                ignore_locality: ignore,
                ..Default::default()
            };
            let report = c
                .run_with(&dag, ExecMode::Real, config, &FailurePlan::default())
                .unwrap();
            report.jobs[0].locality_rate()
        };
        let with_locality = run(false);
        let without = run(true);
        assert!(
            with_locality >= without,
            "locality-aware placement can only help: {with_locality} vs {without}"
        );
        assert!(
            with_locality > 0.9,
            "locality scheduling should place most tasks locally"
        );
    }
}
