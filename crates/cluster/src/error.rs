//! Error type for the cluster substrate.

use std::fmt;

/// Errors raised by cluster construction and job execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The cluster spec is invalid (zero nodes/slots, unknown type, ...).
    InvalidSpec(String),
    /// A task failed after exhausting its retry budget.
    TaskFailed {
        /// Job name.
        job: String,
        /// Task index within the job.
        task: usize,
        /// Attempts made.
        attempts: u32,
        /// Last error message.
        last_error: String,
    },
    /// The job DAG contains a cycle or a dangling dependency.
    InvalidDag(String),
    /// A DFS block lost all replicas; the carrying path identifies which
    /// tile so a recovery driver can recompute it from lineage.
    BlockLost {
        /// DFS path of the file whose block is gone.
        path: String,
        /// Index of the lost block within the file.
        block: usize,
    },
    /// Underlying storage failure.
    Storage(String),
    /// Matrix kernel failure inside a task.
    Kernel(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidSpec(m) => write!(f, "invalid cluster spec: {m}"),
            ClusterError::TaskFailed {
                job,
                task,
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "task {task} of job '{job}' failed after {attempts} attempts: {last_error}"
                )
            }
            ClusterError::InvalidDag(m) => write!(f, "invalid job DAG: {m}"),
            ClusterError::BlockLost { path, block } => {
                write!(
                    f,
                    "storage error: all replicas lost for block {block} of {path}"
                )
            }
            ClusterError::Storage(m) => write!(f, "storage error: {m}"),
            ClusterError::Kernel(m) => write!(f, "kernel error: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<cumulon_dfs::DfsError> for ClusterError {
    fn from(e: cumulon_dfs::DfsError) -> Self {
        match e {
            cumulon_dfs::DfsError::BlockLost { path, block } => {
                ClusterError::BlockLost { path, block }
            }
            other => ClusterError::Storage(other.to_string()),
        }
    }
}

impl From<cumulon_matrix::MatrixError> for ClusterError {
    fn from(e: cumulon_matrix::MatrixError) -> Self {
        ClusterError::Kernel(e.to_string())
    }
}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = ClusterError::TaskFailed {
            job: "mul".into(),
            task: 3,
            attempts: 4,
            last_error: "boom".into(),
        };
        assert!(e.to_string().contains("task 3 of job 'mul'"));
        let s: ClusterError = cumulon_dfs::DfsError::FileNotFound("/x".into()).into();
        assert!(matches!(s, ClusterError::Storage(_)));
        let l: ClusterError = cumulon_dfs::DfsError::BlockLost {
            path: "/matrix/T/0_0".into(),
            block: 0,
        }
        .into();
        assert!(matches!(l, ClusterError::BlockLost { .. }));
        assert!(l.to_string().contains("all replicas lost"));
        let k: ClusterError = cumulon_matrix::MatrixError::PhantomData { op: "x" }.into();
        assert!(matches!(k, ClusterError::Kernel(_)));
    }
}
