//! Cluster construction: a typed fleet of nodes sharing a DFS.

use std::sync::atomic::{AtomicU32, Ordering};

use cumulon_dfs::dfs::NodeId;
use cumulon_dfs::{Dfs, DfsConfig, TileStore};

use crate::billing::BillingPolicy;
use crate::error::{ClusterError, Result};
use crate::hw::HardwareModel;
use crate::instances::{by_name, InstanceType};
use crate::job::{ExecMode, JobDag};
use crate::metrics::RunReport;
use crate::scheduler::{FailurePlan, RunFailure, Scheduler, SchedulerConfig};

/// A deployment choice: which instances, how many, how many task slots
/// each. This is exactly the (hardware, configuration) half of the
/// deployment-plan space the optimizer searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Instance type of every node (homogeneous clusters, as in the paper).
    pub instance: InstanceType,
    /// Number of nodes.
    pub nodes: u32,
    /// Concurrent task slots per node.
    pub slots_per_node: u32,
}

impl ClusterSpec {
    /// Builds a spec from a type name.
    pub fn named(instance: &str, nodes: u32, slots_per_node: u32) -> Result<Self> {
        let instance = by_name(instance).ok_or_else(|| {
            ClusterError::InvalidSpec(format!("unknown instance type {instance}"))
        })?;
        let spec = ClusterSpec {
            instance,
            nodes,
            slots_per_node,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates node and slot counts.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(ClusterError::InvalidSpec("nodes must be positive".into()));
        }
        if self.slots_per_node == 0 {
            return Err(ClusterError::InvalidSpec(
                "slots_per_node must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Total task slots across the cluster.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.slots_per_node
    }
}

/// A provisioned simulated cluster: spec + DFS + tile store + timing model.
///
/// The node count is elastic: [`Cluster::grow`] adds nodes mid-run (e.g.
/// on-demand replacements for revoked spot capacity) and
/// [`Cluster::shrink`] decommissions them gracefully. `nodes` in the spec
/// is the *id-space size* — nodes killed by failure injection stay dead
/// (their ids are never reused), so live capacity is
/// [`Cluster::live_nodes`].
pub struct Cluster {
    spec: ClusterSpec,
    /// Elastic node-id-space size; `spec.nodes` frozen at provision time,
    /// bumped by [`Cluster::grow`]. Atomic so growth works through the
    /// same `&self` the run methods take.
    nodes: AtomicU32,
    store: TileStore,
    hw: HardwareModel,
    billing: BillingPolicy,
}

impl Cluster {
    /// Provisions a cluster with a fresh DFS (replication 3 by default).
    pub fn provision(spec: ClusterSpec) -> Result<Self> {
        Self::provision_with(spec, HardwareModel::default(), DfsConfig::default())
    }

    /// Provisions with explicit hardware and DFS configuration.
    pub fn provision_with(
        spec: ClusterSpec,
        hw: HardwareModel,
        dfs_config: DfsConfig,
    ) -> Result<Self> {
        spec.validate()?;
        let dfs = Dfs::new(spec.nodes, dfs_config);
        Ok(Cluster {
            spec,
            nodes: AtomicU32::new(spec.nodes),
            store: TileStore::new(dfs),
            hw,
            billing: BillingPolicy::HourlyCeil,
        })
    }

    /// The deployment spec, with `nodes` reflecting any elastic growth.
    pub fn spec(&self) -> ClusterSpec {
        ClusterSpec {
            nodes: self.nodes.load(Ordering::SeqCst),
            ..self.spec
        }
    }

    /// Adds `n` fresh (empty) nodes to the cluster and DFS — elastic
    /// grow, e.g. on-demand replacements for revoked spot capacity.
    /// Returns the new node ids. Subsequent runs schedule onto them and
    /// the DFS places new replicas there.
    pub fn grow(&self, n: u32) -> Vec<u32> {
        let mut ids = Vec::with_capacity(n as usize);
        for _ in 0..n {
            ids.push(self.store.dfs().add_node().0);
        }
        // Id space = datanode count; keep the spec in lockstep with the
        // DFS rather than assuming they never diverged.
        self.nodes
            .store(self.store.dfs().node_count() as u32, Ordering::SeqCst);
        ids
    }

    /// Gracefully decommissions the `n` highest-id live nodes: their
    /// sole-replica blocks are first copied to survivors (so no data is
    /// lost even at replication 1), then the nodes leave the fleet. Their
    /// ids are retired, not reused. Returns the ids removed.
    pub fn shrink(&self, n: u32) -> Result<Vec<u32>> {
        let dfs = self.store.dfs();
        let mut live: Vec<u32> = (0..self.nodes.load(Ordering::SeqCst))
            .filter(|&i| dfs.is_node_live(NodeId(i)))
            .collect();
        if (n as usize) >= live.len() {
            return Err(ClusterError::InvalidSpec(format!(
                "cannot shrink by {n}: only {} live nodes",
                live.len()
            )));
        }
        let victims: Vec<u32> = live.split_off(live.len() - n as usize);
        let ids: Vec<NodeId> = victims.iter().map(|&i| NodeId(i)).collect();
        dfs.drain_nodes(&ids, u64::MAX)?;
        dfs.kill_nodes(&ids)?;
        Ok(victims)
    }

    /// Number of currently-live nodes (id-space size minus dead nodes).
    pub fn live_nodes(&self) -> u32 {
        let dfs = self.store.dfs();
        (0..self.nodes.load(Ordering::SeqCst))
            .filter(|&i| dfs.is_node_live(NodeId(i)))
            .count() as u32
    }

    /// The tile store (register inputs / fetch outputs here).
    pub fn store(&self) -> &TileStore {
        &self.store
    }

    /// The hardware timing model in effect.
    pub fn hardware(&self) -> &HardwareModel {
        &self.hw
    }

    /// Overrides the billing policy (default: hourly).
    pub fn set_billing(&mut self, policy: BillingPolicy) {
        self.billing = policy;
    }

    /// The billing policy in effect.
    pub fn billing(&self) -> BillingPolicy {
        self.billing
    }

    /// Runs a job DAG to completion, returning the run report.
    pub fn run(&self, dag: &JobDag, mode: ExecMode) -> Result<RunReport> {
        self.run_with(
            dag,
            mode,
            SchedulerConfig::default(),
            &FailurePlan::default(),
        )
    }

    /// Runs with explicit scheduler configuration and failure injection.
    pub fn run_with(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
    ) -> Result<RunReport> {
        dag.validate()?;
        let scheduler = Scheduler::new(self.spec(), self.store.clone(), self.hw, self.billing);
        scheduler.run(dag, mode, config, failures)
    }

    /// Like [`Cluster::run_with`] but surfacing the structured
    /// [`RunFailure`] on error so a recovery driver can inspect lost
    /// blocks, dead nodes, and completed jobs.
    // The fat Err is the point: RunFailure carries the whole diagnostic
    // payload lineage recovery needs, and failures are rare.
    #[allow(clippy::result_large_err)]
    pub fn try_run_with(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
    ) -> std::result::Result<RunReport, RunFailure> {
        self.try_run_with_traced(
            dag,
            mode,
            config,
            failures,
            &cumulon_trace::Trace::disabled(),
        )
    }

    /// Like [`Cluster::try_run_with`], recording every task attempt, job
    /// and fault event into `trace`. Tracing is observational only: the
    /// run's results, receipts and report are bitwise-identical whether
    /// the handle is enabled or [`cumulon_trace::Trace::disabled`].
    #[allow(clippy::result_large_err)]
    pub fn try_run_with_traced(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
        trace: &cumulon_trace::Trace,
    ) -> std::result::Result<RunReport, RunFailure> {
        let scheduler = Scheduler::new(self.spec(), self.store.clone(), self.hw, self.billing);
        scheduler.try_run_traced(dag, mode, config, failures, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_spec() {
        let s = ClusterSpec::named("m1.large", 4, 2).unwrap();
        assert_eq!(s.total_slots(), 8);
        assert!(ClusterSpec::named("no.such", 1, 1).is_err());
        assert!(ClusterSpec::named("m1.large", 0, 1).is_err());
        assert!(ClusterSpec::named("m1.large", 1, 0).is_err());
    }

    #[test]
    fn provision_exposes_parts() {
        let c = Cluster::provision(ClusterSpec::named("c1.medium", 2, 2).unwrap()).unwrap();
        assert_eq!(c.spec().nodes, 2);
        assert_eq!(c.store().dfs().node_count(), 2);
        assert!(c.hardware().task_startup_s > 0.0);
    }
}
