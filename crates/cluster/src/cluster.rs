//! Cluster construction: a typed fleet of nodes sharing a DFS.

use cumulon_dfs::{Dfs, DfsConfig, TileStore};

use crate::billing::BillingPolicy;
use crate::error::{ClusterError, Result};
use crate::hw::HardwareModel;
use crate::instances::{by_name, InstanceType};
use crate::job::{ExecMode, JobDag};
use crate::metrics::RunReport;
use crate::scheduler::{FailurePlan, RunFailure, Scheduler, SchedulerConfig};

/// A deployment choice: which instances, how many, how many task slots
/// each. This is exactly the (hardware, configuration) half of the
/// deployment-plan space the optimizer searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Instance type of every node (homogeneous clusters, as in the paper).
    pub instance: InstanceType,
    /// Number of nodes.
    pub nodes: u32,
    /// Concurrent task slots per node.
    pub slots_per_node: u32,
}

impl ClusterSpec {
    /// Builds a spec from a type name.
    pub fn named(instance: &str, nodes: u32, slots_per_node: u32) -> Result<Self> {
        let instance = by_name(instance).ok_or_else(|| {
            ClusterError::InvalidSpec(format!("unknown instance type {instance}"))
        })?;
        let spec = ClusterSpec {
            instance,
            nodes,
            slots_per_node,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates node and slot counts.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(ClusterError::InvalidSpec("nodes must be positive".into()));
        }
        if self.slots_per_node == 0 {
            return Err(ClusterError::InvalidSpec(
                "slots_per_node must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Total task slots across the cluster.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.slots_per_node
    }
}

/// A provisioned simulated cluster: spec + DFS + tile store + timing model.
pub struct Cluster {
    spec: ClusterSpec,
    store: TileStore,
    hw: HardwareModel,
    billing: BillingPolicy,
}

impl Cluster {
    /// Provisions a cluster with a fresh DFS (replication 3 by default).
    pub fn provision(spec: ClusterSpec) -> Result<Self> {
        Self::provision_with(spec, HardwareModel::default(), DfsConfig::default())
    }

    /// Provisions with explicit hardware and DFS configuration.
    pub fn provision_with(
        spec: ClusterSpec,
        hw: HardwareModel,
        dfs_config: DfsConfig,
    ) -> Result<Self> {
        spec.validate()?;
        let dfs = Dfs::new(spec.nodes, dfs_config);
        Ok(Cluster {
            spec,
            store: TileStore::new(dfs),
            hw,
            billing: BillingPolicy::HourlyCeil,
        })
    }

    /// The deployment spec.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// The tile store (register inputs / fetch outputs here).
    pub fn store(&self) -> &TileStore {
        &self.store
    }

    /// The hardware timing model in effect.
    pub fn hardware(&self) -> &HardwareModel {
        &self.hw
    }

    /// Overrides the billing policy (default: hourly).
    pub fn set_billing(&mut self, policy: BillingPolicy) {
        self.billing = policy;
    }

    /// The billing policy in effect.
    pub fn billing(&self) -> BillingPolicy {
        self.billing
    }

    /// Runs a job DAG to completion, returning the run report.
    pub fn run(&self, dag: &JobDag, mode: ExecMode) -> Result<RunReport> {
        self.run_with(
            dag,
            mode,
            SchedulerConfig::default(),
            &FailurePlan::default(),
        )
    }

    /// Runs with explicit scheduler configuration and failure injection.
    pub fn run_with(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
    ) -> Result<RunReport> {
        dag.validate()?;
        let scheduler = Scheduler::new(self.spec, self.store.clone(), self.hw, self.billing);
        scheduler.run(dag, mode, config, failures)
    }

    /// Like [`Cluster::run_with`] but surfacing the structured
    /// [`RunFailure`] on error so a recovery driver can inspect lost
    /// blocks, dead nodes, and completed jobs.
    // The fat Err is the point: RunFailure carries the whole diagnostic
    // payload lineage recovery needs, and failures are rare.
    #[allow(clippy::result_large_err)]
    pub fn try_run_with(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
    ) -> std::result::Result<RunReport, RunFailure> {
        self.try_run_with_traced(
            dag,
            mode,
            config,
            failures,
            &cumulon_trace::Trace::disabled(),
        )
    }

    /// Like [`Cluster::try_run_with`], recording every task attempt, job
    /// and fault event into `trace`. Tracing is observational only: the
    /// run's results, receipts and report are bitwise-identical whether
    /// the handle is enabled or [`cumulon_trace::Trace::disabled`].
    #[allow(clippy::result_large_err)]
    pub fn try_run_with_traced(
        &self,
        dag: &JobDag,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
        trace: &cumulon_trace::Trace,
    ) -> std::result::Result<RunReport, RunFailure> {
        let scheduler = Scheduler::new(self.spec, self.store.clone(), self.hw, self.billing);
        scheduler.try_run_traced(dag, mode, config, failures, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_spec() {
        let s = ClusterSpec::named("m1.large", 4, 2).unwrap();
        assert_eq!(s.total_slots(), 8);
        assert!(ClusterSpec::named("no.such", 1, 1).is_err());
        assert!(ClusterSpec::named("m1.large", 0, 1).is_err());
        assert!(ClusterSpec::named("m1.large", 1, 0).is_err());
    }

    #[test]
    fn provision_exposes_parts() {
        let c = Cluster::provision(ClusterSpec::named("c1.medium", 2, 2).unwrap()).unwrap();
        assert_eq!(c.spec().nodes, 2);
        assert_eq!(c.store().dfs().node_count(), 2);
        assert!(c.hardware().task_startup_s > 0.0);
    }
}
