//! Run reports: what a simulated execution did and what it cost.

use serde::{Deserialize, Serialize};

use crate::job::TaskReceipt;

/// Statistics of one completed task (final successful attempt).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskStat {
    /// Index of the task within its job.
    pub task: usize,
    /// Node the successful attempt ran on.
    pub node: u32,
    /// Simulated start time (seconds).
    pub start_s: f64,
    /// Simulated end time (seconds).
    pub end_s: f64,
    /// Number of attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Whether the dominant input was node-local.
    pub input_local: bool,
}

impl TaskStat {
    /// Task duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Statistics of one completed job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStats {
    /// Job name.
    pub name: String,
    /// Physical operator label (for calibration grouping).
    pub op_label: String,
    /// Earliest task start.
    pub start_s: f64,
    /// Latest task end.
    pub end_s: f64,
    /// Per-task stats.
    pub tasks: Vec<TaskStat>,
    /// Sum of task receipts (memory field holds the max).
    #[serde(skip)]
    pub receipt: TaskReceipt,
}

impl JobStats {
    /// Job span in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Mean task duration.
    pub fn mean_task_s(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(TaskStat::duration_s).sum::<f64>() / self.tasks.len() as f64
    }

    /// Longest task duration.
    pub fn max_task_s(&self) -> f64 {
        self.tasks
            .iter()
            .map(TaskStat::duration_s)
            .fold(0.0, f64::max)
    }

    /// Fraction of tasks whose dominant input was node-local.
    pub fn locality_rate(&self) -> f64 {
        if self.tasks.is_empty() {
            return 1.0;
        }
        self.tasks.iter().filter(|t| t.input_local).count() as f64 / self.tasks.len() as f64
    }

    /// Total retries across tasks.
    pub fn retries(&self) -> u32 {
        self.tasks
            .iter()
            .map(|t| t.attempts.saturating_sub(1))
            .sum()
    }
}

/// Fault-related counters for one run (or one recovery round). All zeros
/// on a failure-free run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Task attempts launched, including retries and speculative copies.
    pub task_attempts: u64,
    /// Retry attempts (attempts beyond the first, speculation excluded).
    pub retries: u64,
    /// Speculative (backup) copies launched for stragglers.
    pub speculative_launches: u64,
    /// Speculative copies that finished before the original attempt.
    pub speculative_wins: u64,
    /// Nodes that died during the run.
    pub node_deaths: u64,
    /// Bytes copied to restore replication after node deaths.
    pub rereplicated_bytes: u64,
    /// Distinct `BlockLost` errors observed by task attempts.
    pub lost_block_events: u64,
    /// Jobs re-executed (fully or partially) by lineage recovery.
    pub recovered_jobs: u64,
    /// Correlated bulk spot revocations that claimed at least one node.
    pub revocations: u64,
    /// Nodes reclaimed by spot revocations (not counted in `node_deaths`).
    pub revoked_nodes: u64,
    /// Task attempts on doomed nodes that finished inside a revocation
    /// warning window (gracefully drained rather than lost).
    pub drained_tasks: u64,
    /// In-flight task attempts killed by revocations and re-executed.
    pub lost_tasks: u64,
    /// Sole-replica bytes proactively copied off doomed nodes during
    /// revocation warning windows.
    pub drained_bytes: u64,
    /// Simulated task-seconds spent re-executing work (retries, backup
    /// copies, recovery rounds).
    pub rework_task_s: f64,
    /// Simulated task-seconds across all attempts (the rework
    /// denominator; nonzero even on clean runs).
    pub total_task_s: f64,
}

impl FaultStats {
    /// Component-wise sum, for merging recovery rounds into one report.
    pub fn merge(&mut self, other: &FaultStats) {
        self.task_attempts += other.task_attempts;
        self.retries += other.retries;
        self.speculative_launches += other.speculative_launches;
        self.speculative_wins += other.speculative_wins;
        self.node_deaths += other.node_deaths;
        self.rereplicated_bytes += other.rereplicated_bytes;
        self.lost_block_events += other.lost_block_events;
        self.recovered_jobs += other.recovered_jobs;
        self.revocations += other.revocations;
        self.revoked_nodes += other.revoked_nodes;
        self.drained_tasks += other.drained_tasks;
        self.lost_tasks += other.lost_tasks;
        self.drained_bytes += other.drained_bytes;
        self.rework_task_s += other.rework_task_s;
        self.total_task_s += other.total_task_s;
    }

    /// True when nothing fault-related happened.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.speculative_launches == 0
            && self.node_deaths == 0
            && self.rereplicated_bytes == 0
            && self.lost_block_events == 0
            && self.recovered_jobs == 0
            && self.revocations == 0
            && self.revoked_nodes == 0
            && self.drained_tasks == 0
            && self.lost_tasks == 0
            && self.drained_bytes == 0
            && self.rework_task_s == 0.0
    }

    /// Re-executed task-seconds as a fraction of all task-seconds
    /// (0 when no work ran at all).
    pub fn rework_ratio(&self) -> f64 {
        if self.total_task_s <= 0.0 {
            return 0.0;
        }
        self.rework_task_s / self.total_task_s
    }
}

/// A full program run on one deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Instance type name.
    pub instance: String,
    /// Number of nodes.
    pub nodes: u32,
    /// Task slots per node.
    pub slots: u32,
    /// Per-job statistics, in completion order.
    pub jobs: Vec<JobStats>,
    /// End-to-end simulated makespan in seconds.
    pub makespan_s: f64,
    /// Billed hours.
    pub billed_hours: f64,
    /// Dollar cost.
    pub cost_dollars: f64,
    /// Fault counters (retries, speculation, node deaths, recovery).
    #[serde(default)]
    pub faults: FaultStats,
}

impl RunReport {
    /// Looks up a job's stats by name.
    pub fn job(&self, name: &str) -> Option<&JobStats> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// Total tasks executed.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }

    /// Task-weighted locality rate across all jobs: the fraction of
    /// completed tasks whose dominant input was node-local. `1.0` when
    /// the run had no tasks (nothing could have been remote).
    pub fn locality_rate(&self) -> f64 {
        let total = self.total_tasks();
        if total == 0 {
            return 1.0;
        }
        let local: usize = self
            .jobs
            .iter()
            .map(|j| j.tasks.iter().filter(|t| t.input_local).count())
            .sum();
        local as f64 / total as f64
    }

    /// Human-readable one-line summary, including the run's locality
    /// rate. Fault counters are appended only when something
    /// fault-related actually happened (format pinned by unit test).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} x{} ({} slots): {} jobs, {} tasks, locality {:.0}%, makespan {:.1}s, {:.0} billed h, ${:.2}",
            self.instance,
            self.nodes,
            self.slots,
            self.jobs.len(),
            self.total_tasks(),
            self.locality_rate() * 100.0,
            self.makespan_s,
            self.billed_hours,
            self.cost_dollars
        );
        if !self.faults.is_clean() {
            let f = &self.faults;
            line.push_str(&format!(
                " [faults: {} retries, {} spec ({} won), {} node deaths, {} B re-replicated, {} lost blocks, {} jobs recovered",
                f.retries,
                f.speculative_launches,
                f.speculative_wins,
                f.node_deaths,
                f.rereplicated_bytes,
                f.lost_block_events,
                f.recovered_jobs
            ));
            if f.revocations > 0 {
                line.push_str(&format!(
                    ", {} revocations ({} nodes, {} drained/{} lost tasks, {} B drained)",
                    f.revocations, f.revoked_nodes, f.drained_tasks, f.lost_tasks, f.drained_bytes
                ));
            }
            if f.rework_task_s > 0.0 {
                line.push_str(&format!(", rework {:.0}%", f.rework_ratio() * 100.0));
            }
            line.push(']');
        }
        line
    }

    /// Canonical fingerprint of the run: every float by bit pattern, every
    /// counter verbatim. Two runs match iff their fingerprints are equal —
    /// the identity the bench gate and `cumulon check` enforce across
    /// observationally-equivalent configurations (thread counts, payload
    /// planes, tracing).
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "mk{:016x} bh{:016x} $ {:016x} {:?}\n",
            self.makespan_s.to_bits(),
            self.billed_hours.to_bits(),
            self.cost_dollars.to_bits(),
            self.faults,
        );
        for j in &self.jobs {
            let _ = write!(
                s,
                "{} [{:016x}-{:016x}] r({:016x},{},{},{:016x},{:016x},{})",
                j.name,
                j.start_s.to_bits(),
                j.end_s.to_bits(),
                j.receipt.work.flops.to_bits(),
                j.receipt.read.bytes,
                j.receipt.write.bytes,
                j.receipt.mem_mb.to_bits(),
                j.receipt.fixed_s.to_bits(),
                j.receipt.io_ops,
            );
            for t in &j.tasks {
                let _ = write!(
                    s,
                    " {}@{}[{:016x}-{:016x}]x{}",
                    t.task,
                    t.node,
                    t.start_s.to_bits(),
                    t.end_s.to_bits(),
                    t.attempts
                );
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> JobStats {
        JobStats {
            name: "mul#0".into(),
            op_label: "mul".into(),
            start_s: 0.0,
            end_s: 10.0,
            tasks: vec![
                TaskStat {
                    task: 0,
                    node: 0,
                    start_s: 0.0,
                    end_s: 4.0,
                    attempts: 1,
                    input_local: true,
                },
                TaskStat {
                    task: 1,
                    node: 1,
                    start_s: 0.0,
                    end_s: 10.0,
                    attempts: 2,
                    input_local: false,
                },
            ],
            receipt: TaskReceipt::default(),
        }
    }

    #[test]
    fn job_aggregates() {
        let s = stats();
        assert_eq!(s.duration_s(), 10.0);
        assert_eq!(s.mean_task_s(), 7.0);
        assert_eq!(s.max_task_s(), 10.0);
        assert_eq!(s.locality_rate(), 0.5);
        assert_eq!(s.retries(), 1);
    }

    #[test]
    fn empty_job_defaults() {
        let s = JobStats {
            name: "x".into(),
            op_label: "x".into(),
            start_s: 0.0,
            end_s: 0.0,
            tasks: vec![],
            receipt: TaskReceipt::default(),
        };
        assert_eq!(s.mean_task_s(), 0.0);
        assert_eq!(s.max_task_s(), 0.0);
        assert_eq!(s.locality_rate(), 1.0);
    }

    #[test]
    fn report_lookup_and_summary() {
        let r = RunReport {
            instance: "m1.large".into(),
            nodes: 4,
            slots: 2,
            jobs: vec![stats()],
            makespan_s: 10.0,
            billed_hours: 1.0,
            cost_dollars: 0.96,
            faults: FaultStats::default(),
        };
        assert!(r.job("mul#0").is_some());
        assert!(r.job("nope").is_none());
        assert_eq!(r.total_tasks(), 2);
        assert!(r.summary().contains("m1.large x4"));
        assert!(
            !r.summary().contains("faults"),
            "clean run should not print fault counters"
        );
    }

    #[test]
    fn fault_stats_merge_and_summary() {
        let mut a = FaultStats {
            retries: 2,
            node_deaths: 1,
            ..Default::default()
        };
        let b = FaultStats {
            retries: 1,
            speculative_launches: 3,
            speculative_wins: 1,
            rereplicated_bytes: 4096,
            lost_block_events: 2,
            recovered_jobs: 1,
            task_attempts: 10,
            node_deaths: 0,
            revocations: 1,
            revoked_nodes: 2,
            drained_tasks: 3,
            lost_tasks: 1,
            drained_bytes: 512,
            rework_task_s: 5.0,
            total_task_s: 20.0,
        };
        a.merge(&b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.speculative_wins, 1);
        assert_eq!(a.node_deaths, 1);
        assert_eq!(a.task_attempts, 10);
        assert_eq!(a.revocations, 1);
        assert_eq!(a.revoked_nodes, 2);
        assert_eq!(a.drained_tasks, 3);
        assert_eq!(a.lost_tasks, 1);
        assert_eq!(a.drained_bytes, 512);
        assert_eq!(a.rework_task_s, 5.0);
        assert_eq!(a.total_task_s, 20.0);
        assert_eq!(a.rework_ratio(), 0.25);
        assert!(!a.is_clean());
        assert!(FaultStats::default().is_clean());
        let clean_with_work = FaultStats {
            task_attempts: 4,
            total_task_s: 40.0,
            ..Default::default()
        };
        assert!(
            clean_with_work.is_clean(),
            "total task-seconds accumulate on clean runs too"
        );
        assert_eq!(clean_with_work.rework_ratio(), 0.0);

        let r = RunReport {
            instance: "m1.large".into(),
            nodes: 4,
            slots: 2,
            jobs: vec![stats()],
            makespan_s: 10.0,
            billed_hours: 1.0,
            cost_dollars: 0.96,
            faults: a,
        };
        let s = r.summary();
        assert!(s.contains("3 retries"));
        assert!(s.contains("1 node deaths"));
        assert!(s.contains("1 jobs recovered"));
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        let r = RunReport {
            instance: "m1.large".into(),
            nodes: 4,
            slots: 2,
            jobs: vec![stats()],
            makespan_s: 10.0,
            billed_hours: 1.0,
            cost_dollars: 0.96,
            faults: FaultStats::default(),
        };
        assert_eq!(r.fingerprint(), r.clone().fingerprint());
        let mut nudged = r.clone();
        nudged.makespan_s = f64::from_bits(r.makespan_s.to_bits() + 1);
        assert_ne!(
            r.fingerprint(),
            nudged.fingerprint(),
            "a one-ULP drift must change the fingerprint"
        );
        let mut retried = r;
        retried.jobs[0].tasks[0].attempts += 1;
        assert_ne!(retried.fingerprint(), nudged.fingerprint());
    }

    #[test]
    fn report_locality_rate() {
        let r = RunReport {
            instance: "m1.large".into(),
            nodes: 4,
            slots: 2,
            jobs: vec![stats(), stats()],
            makespan_s: 10.0,
            billed_hours: 1.0,
            cost_dollars: 0.96,
            faults: FaultStats::default(),
        };
        // Each stats() job is 1 local / 2 tasks.
        assert_eq!(r.locality_rate(), 0.5);
        let empty = RunReport {
            jobs: vec![],
            ..r.clone()
        };
        assert_eq!(empty.locality_rate(), 1.0);
    }

    #[test]
    fn summary_format_is_pinned() {
        let clean = RunReport {
            instance: "m1.large".into(),
            nodes: 4,
            slots: 2,
            jobs: vec![stats()],
            makespan_s: 10.0,
            billed_hours: 1.0,
            cost_dollars: 0.96,
            faults: FaultStats::default(),
        };
        assert_eq!(
            clean.summary(),
            "m1.large x4 (2 slots): 1 jobs, 2 tasks, locality 50%, \
             makespan 10.0s, 1 billed h, $0.96"
        );

        let faulted = RunReport {
            faults: FaultStats {
                task_attempts: 10,
                retries: 3,
                speculative_launches: 3,
                speculative_wins: 1,
                node_deaths: 1,
                rereplicated_bytes: 4096,
                lost_block_events: 2,
                recovered_jobs: 1,
                ..Default::default()
            },
            ..clean.clone()
        };
        assert_eq!(
            faulted.summary(),
            "m1.large x4 (2 slots): 1 jobs, 2 tasks, locality 50%, \
             makespan 10.0s, 1 billed h, $0.96 \
             [faults: 3 retries, 3 spec (1 won), 1 node deaths, \
             4096 B re-replicated, 2 lost blocks, 1 jobs recovered]"
        );

        let revoked = RunReport {
            faults: FaultStats {
                task_attempts: 12,
                retries: 2,
                revocations: 1,
                revoked_nodes: 2,
                drained_tasks: 3,
                lost_tasks: 1,
                drained_bytes: 512,
                rereplicated_bytes: 4096,
                rework_task_s: 5.0,
                total_task_s: 20.0,
                ..Default::default()
            },
            ..clean
        };
        assert_eq!(
            revoked.summary(),
            "m1.large x4 (2 slots): 1 jobs, 2 tasks, locality 50%, \
             makespan 10.0s, 1 billed h, $0.96 \
             [faults: 2 retries, 0 spec (0 won), 0 node deaths, \
             4096 B re-replicated, 0 lost blocks, 0 jobs recovered, \
             1 revocations (2 nodes, 3 drained/1 lost tasks, 512 B drained), \
             rework 25%]"
        );
    }
}
