//! The cloud instance-type catalog.
//!
//! Specs and prices mirror the 2013-era Amazon EC2 on-demand fleet the
//! paper provisioned from. Exact numbers matter less than the *structure*
//! they induce: `c1.*` buys cheap flops but little memory, `m2.*` buys
//! memory at a premium, `m1.*` sits in between, and the `cc*` cluster-
//! compute types add fast networking at a high hourly rate. That structure
//! is what makes the deployment optimizer's choice non-trivial.

use serde::{Deserialize, Serialize};

/// Performance and price descriptor of one instance type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// EC2-style name, e.g. `"c1.xlarge"`.
    pub name: &'static str,
    /// Physical cores (slots beyond this oversubscribe the CPU).
    pub cores: u32,
    /// Effective dense-GEMM throughput per core, in GFLOP/s.
    pub gflops_per_core: f64,
    /// Memory in MB, shared by all concurrently running task slots.
    pub memory_mb: u64,
    /// Aggregate local-disk read bandwidth in MB/s, shared by slots.
    pub disk_read_mbs: f64,
    /// Aggregate local-disk write bandwidth in MB/s, shared by slots.
    pub disk_write_mbs: f64,
    /// Network bandwidth in MB/s, shared by slots (remote DFS traffic).
    pub net_mbs: f64,
    /// On-demand price in dollars per instance-hour.
    pub price_per_hour: f64,
}

impl InstanceType {
    /// Effective whole-node GFLOP/s when `slots` tasks run concurrently:
    /// scales with the busy cores, capped at the physical core count.
    pub fn node_gflops(&self, slots: u32) -> f64 {
        self.gflops_per_core * slots.min(self.cores) as f64
    }

    /// Dollars per GFLOP/s-hour — a crude "value" metric used in tests to
    /// assert the catalog's structure (c1 cheapest compute, m2 priciest).
    pub fn dollars_per_gflops(&self) -> f64 {
        self.price_per_hour / (self.gflops_per_core * self.cores as f64)
    }
}

/// The full catalog, ordered roughly by price.
pub fn catalog() -> &'static [InstanceType] {
    &CATALOG
}

/// Looks up a type by name.
pub fn by_name(name: &str) -> Option<InstanceType> {
    CATALOG.iter().copied().find(|t| t.name == name)
}

static CATALOG: [InstanceType; 10] = [
    InstanceType {
        name: "m1.small",
        cores: 1,
        gflops_per_core: 1.2,
        memory_mb: 1_700,
        disk_read_mbs: 60.0,
        disk_write_mbs: 50.0,
        net_mbs: 40.0,
        price_per_hour: 0.060,
    },
    InstanceType {
        name: "m1.medium",
        cores: 1,
        gflops_per_core: 2.4,
        memory_mb: 3_750,
        disk_read_mbs: 70.0,
        disk_write_mbs: 60.0,
        net_mbs: 60.0,
        price_per_hour: 0.120,
    },
    InstanceType {
        name: "c1.medium",
        cores: 2,
        gflops_per_core: 2.8,
        memory_mb: 1_700,
        disk_read_mbs: 70.0,
        disk_write_mbs: 60.0,
        net_mbs: 60.0,
        price_per_hour: 0.145,
    },
    InstanceType {
        name: "m1.large",
        cores: 2,
        gflops_per_core: 2.4,
        memory_mb: 7_500,
        disk_read_mbs: 90.0,
        disk_write_mbs: 75.0,
        net_mbs: 80.0,
        price_per_hour: 0.240,
    },
    InstanceType {
        name: "m2.xlarge",
        cores: 2,
        gflops_per_core: 3.0,
        memory_mb: 17_100,
        disk_read_mbs: 100.0,
        disk_write_mbs: 85.0,
        net_mbs: 80.0,
        price_per_hour: 0.410,
    },
    InstanceType {
        name: "m1.xlarge",
        cores: 4,
        gflops_per_core: 2.4,
        memory_mb: 15_000,
        disk_read_mbs: 120.0,
        disk_write_mbs: 100.0,
        net_mbs: 100.0,
        price_per_hour: 0.480,
    },
    InstanceType {
        name: "c1.xlarge",
        cores: 8,
        gflops_per_core: 2.8,
        memory_mb: 7_000,
        disk_read_mbs: 120.0,
        disk_write_mbs: 100.0,
        net_mbs: 100.0,
        price_per_hour: 0.580,
    },
    InstanceType {
        name: "m2.2xlarge",
        cores: 4,
        gflops_per_core: 3.0,
        memory_mb: 34_200,
        disk_read_mbs: 130.0,
        disk_write_mbs: 110.0,
        net_mbs: 100.0,
        price_per_hour: 0.820,
    },
    InstanceType {
        name: "cc1.4xlarge",
        cores: 16,
        gflops_per_core: 3.2,
        memory_mb: 23_000,
        disk_read_mbs: 200.0,
        disk_write_mbs: 160.0,
        net_mbs: 1_200.0,
        price_per_hour: 1.300,
    },
    InstanceType {
        name: "cc2.8xlarge",
        cores: 32,
        gflops_per_core: 3.4,
        memory_mb: 60_500,
        disk_read_mbs: 250.0,
        disk_write_mbs: 200.0,
        net_mbs: 1_200.0,
        price_per_hour: 2.400,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let t = by_name("c1.xlarge").unwrap();
        assert_eq!(t.cores, 8);
        assert!(by_name("p5.everything").is_none());
    }

    #[test]
    fn catalog_has_distinct_names() {
        let mut names: Vec<_> = catalog().iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog().len());
    }

    #[test]
    fn node_gflops_caps_at_cores() {
        let t = by_name("c1.medium").unwrap();
        assert_eq!(t.node_gflops(1), 2.8);
        assert_eq!(t.node_gflops(2), 5.6);
        assert_eq!(t.node_gflops(8), 5.6, "oversubscription adds no throughput");
    }

    #[test]
    fn structure_c1_cheapest_compute() {
        let c1 = by_name("c1.xlarge").unwrap();
        let m1 = by_name("m1.xlarge").unwrap();
        let m2 = by_name("m2.2xlarge").unwrap();
        assert!(c1.dollars_per_gflops() < m1.dollars_per_gflops());
        assert!(m1.dollars_per_gflops() < m2.dollars_per_gflops());
    }

    #[test]
    fn structure_m2_most_memory_per_core() {
        let m2 = by_name("m2.2xlarge").unwrap();
        let c1 = by_name("c1.xlarge").unwrap();
        assert!(m2.memory_mb / m2.cores as u64 > 8 * (c1.memory_mb / c1.cores as u64));
    }

    #[test]
    fn all_specs_positive() {
        for t in catalog() {
            assert!(t.cores > 0, "{}", t.name);
            assert!(t.gflops_per_core > 0.0);
            assert!(t.memory_mb > 0);
            assert!(t.disk_read_mbs > 0.0 && t.disk_write_mbs > 0.0 && t.net_mbs > 0.0);
            assert!(t.price_per_hour > 0.0);
        }
    }
}
