//! The hardware timing model: task receipts → simulated seconds.
//!
//! This is the "ground truth" the optimizer's fitted cost models try to
//! predict. It charges:
//!
//! * a fixed per-task startup (Hadoop task-launch overhead);
//! * CPU time at the per-core kernel rate, degraded when slots
//!   oversubscribe cores;
//! * disk time for node-local DFS bytes at the node's disk bandwidth
//!   divided by the configured slot count (slots contend);
//! * network time for remote DFS bytes, likewise shared;
//! * a super-linear *memory-pressure* penalty on I/O when the concurrent
//!   tasks' working sets exceed node memory (spilling) — this is what
//!   bounds the useful slot count and split size, exactly the knobs the
//!   paper's optimizer tunes;
//! * a seeded lognormal noise factor modelling stragglers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::instances::InstanceType;
use crate::job::TaskReceipt;

/// Deterministic straggler noise: lognormal multiplicative factor keyed by
/// `(job, task, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Sigma of the underlying normal; 0 disables noise.
    pub sigma: f64,
    /// Base seed.
    pub seed: u64,
}

impl NoiseModel {
    /// No noise (deterministic task times).
    pub fn none() -> Self {
        NoiseModel {
            sigma: 0.0,
            seed: 0,
        }
    }

    /// Typical mild straggler distribution.
    pub fn standard(seed: u64) -> Self {
        NoiseModel { sigma: 0.08, seed }
    }

    /// Multiplicative factor for an attempt. Mean-one lognormal: the
    /// underlying normal is centred at `-sigma²/2`.
    pub fn factor(&self, job: usize, task: usize, attempt: u32) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let key = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((job as u64) << 40)
            .wrapping_add((task as u64) << 8)
            .wrapping_add(attempt as u64);
        let mut rng = StdRng::seed_from_u64(key);
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0f64..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.sigma * z - self.sigma * self.sigma / 2.0).exp()
    }
}

/// Fixed hardware/framework constants of the simulated stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Per-task launch overhead in seconds (JVM spin-up and friends).
    pub task_startup_s: f64,
    /// Per-DFS-file-operation overhead in seconds (namenode round trip,
    /// open, seek). This is what makes very small tiles expensive.
    pub io_op_overhead_s: f64,
    /// Fraction of peak GFLOP/s our kernels achieve (dense GEMM
    /// efficiency).
    pub cpu_efficiency: f64,
    /// Framework memory floor per concurrent task, MB.
    pub task_mem_floor_mb: f64,
    /// Exponent of the memory-pressure penalty (≥ 1; applied to I/O when
    /// demand exceeds capacity).
    pub mem_penalty_exp: f64,
    /// Straggler noise.
    pub noise: NoiseModel,
}

impl Default for HardwareModel {
    fn default() -> Self {
        HardwareModel {
            task_startup_s: 2.0,
            io_op_overhead_s: 0.02,
            cpu_efficiency: 0.85,
            task_mem_floor_mb: 200.0,
            mem_penalty_exp: 2.0,
            noise: NoiseModel::standard(0x00c0_ffee),
        }
    }
}

impl HardwareModel {
    /// Deterministic (noise-free) duration of a task attempt, in seconds.
    ///
    /// `slots` is the configured concurrency per node — bandwidth shares
    /// and memory pressure are computed against the full slot complement,
    /// matching how Hadoop provisions per-slot resources statically.
    pub fn task_seconds_base(
        &self,
        instance: &InstanceType,
        slots: u32,
        receipt: &TaskReceipt,
    ) -> f64 {
        let slots = slots.max(1);
        // --- CPU ---------------------------------------------------------
        let core_share = (instance.cores as f64 / slots as f64).min(1.0);
        let gflops = instance.gflops_per_core * core_share * self.cpu_efficiency;
        let cpu_s = receipt.work.flops / (gflops * 1e9);

        // --- I/O ----------------------------------------------------------
        let disk_read_bps = instance.disk_read_mbs * 1e6 / slots as f64;
        let disk_write_bps = instance.disk_write_mbs * 1e6 / slots as f64;
        let net_bps = instance.net_mbs * 1e6 / slots as f64;
        let read_s = receipt.read.local_bytes as f64 / disk_read_bps
            + receipt.read.remote_bytes as f64 / net_bps;
        // Local replica hits the disk; remote replicas cross the network.
        let write_s = receipt.write.local_bytes as f64 / disk_write_bps
            + receipt.write.remote_bytes as f64 / net_bps;

        // --- Memory pressure ----------------------------------------------
        let demand_mb = slots as f64 * (receipt.mem_mb + self.task_mem_floor_mb);
        let pressure = demand_mb / instance.memory_mb as f64;
        let io_penalty = if pressure > 1.0 {
            pressure.powf(self.mem_penalty_exp)
        } else {
            1.0
        };

        self.task_startup_s
            + receipt.fixed_s
            + receipt.io_ops as f64 * self.io_op_overhead_s
            + cpu_s
            + (read_s + write_s) * io_penalty
    }

    /// Noise-free split of [`Self::task_seconds_base`] into execution
    /// phases: task launch (startup, reported on its own so a one-wave
    /// plan's constant launch cost is not misread as executor
    /// inefficiency), per-op overhead (op-fixed seconds + IO-op
    /// latency), kernel compute, and penalized read/write time. The
    /// components sum to the base duration up to floating-point rounding;
    /// trace consumers rescale them to an attempt's *actual* (noisy)
    /// duration via [`cumulon_trace::PhaseBreakdown::scaled_to`], so the
    /// per-phase attribution always reproduces observed span totals.
    pub fn task_phases(
        &self,
        instance: &InstanceType,
        slots: u32,
        receipt: &TaskReceipt,
    ) -> cumulon_trace::PhaseBreakdown {
        let slots = slots.max(1);
        let core_share = (instance.cores as f64 / slots as f64).min(1.0);
        let gflops = instance.gflops_per_core * core_share * self.cpu_efficiency;
        let cpu_s = receipt.work.flops / (gflops * 1e9);
        let disk_read_bps = instance.disk_read_mbs * 1e6 / slots as f64;
        let disk_write_bps = instance.disk_write_mbs * 1e6 / slots as f64;
        let net_bps = instance.net_mbs * 1e6 / slots as f64;
        let read_s = receipt.read.local_bytes as f64 / disk_read_bps
            + receipt.read.remote_bytes as f64 / net_bps;
        let write_s = receipt.write.local_bytes as f64 / disk_write_bps
            + receipt.write.remote_bytes as f64 / net_bps;
        let demand_mb = slots as f64 * (receipt.mem_mb + self.task_mem_floor_mb);
        let pressure = demand_mb / instance.memory_mb as f64;
        let io_penalty = if pressure > 1.0 {
            pressure.powf(self.mem_penalty_exp)
        } else {
            1.0
        };
        cumulon_trace::PhaseBreakdown {
            compute_s: cpu_s,
            read_s: read_s * io_penalty,
            write_s: write_s * io_penalty,
            startup_s: self.task_startup_s,
            overhead_s: receipt.fixed_s + receipt.io_ops as f64 * self.io_op_overhead_s,
        }
    }

    /// Duration including straggler noise for a specific attempt.
    pub fn task_seconds(
        &self,
        instance: &InstanceType,
        slots: u32,
        receipt: &TaskReceipt,
        job: usize,
        task: usize,
        attempt: u32,
    ) -> f64 {
        self.task_seconds_base(instance, slots, receipt) * self.noise.factor(job, task, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::by_name;
    use cumulon_dfs::IoReceipt;
    use cumulon_matrix::ops::Work;

    fn receipt(flops: f64, local_read: u64, remote_read: u64, write: u64, mem: f64) -> TaskReceipt {
        TaskReceipt {
            work: Work {
                flops,
                bytes_in: 0.0,
                bytes_out: 0.0,
            },
            read: IoReceipt {
                bytes: local_read + remote_read,
                local_bytes: local_read,
                remote_bytes: remote_read,
            },
            write: IoReceipt {
                bytes: write,
                local_bytes: write,
                remote_bytes: 0,
            },
            mem_mb: mem,
            fixed_s: 0.0,
            io_ops: 0,
        }
    }

    fn hw() -> HardwareModel {
        HardwareModel {
            noise: NoiseModel::none(),
            ..Default::default()
        }
    }

    #[test]
    fn startup_only_for_empty_task() {
        let t = by_name("m1.large").unwrap();
        let s = hw().task_seconds_base(&t, 2, &TaskReceipt::default());
        assert_eq!(s, 2.0);
    }

    #[test]
    fn cpu_time_scales_with_flops() {
        let t = by_name("m1.large").unwrap();
        let h = hw();
        let s1 = h.task_seconds_base(&t, 1, &receipt(1e9, 0, 0, 0, 0.0));
        let s2 = h.task_seconds_base(&t, 1, &receipt(2e9, 0, 0, 0, 0.0));
        assert!((s2 - h.task_startup_s) / (s1 - h.task_startup_s) > 1.99);
    }

    #[test]
    fn oversubscription_slows_cpu() {
        let t = by_name("m1.large").unwrap(); // 2 cores
        let h = hw();
        let r = receipt(1e10, 0, 0, 0, 0.0);
        let at2 = h.task_seconds_base(&t, 2, &r);
        let at4 = h.task_seconds_base(&t, 4, &r);
        assert!(
            at4 > 1.9 * (at2 - h.task_startup_s),
            "4 slots on 2 cores halves per-task speed"
        );
    }

    #[test]
    fn remote_reads_cost_more_than_local() {
        let t = by_name("m1.small").unwrap(); // disk 60 MB/s, net 40 MB/s
        let h = hw();
        let local = h.task_seconds_base(&t, 1, &receipt(0.0, 600_000_000, 0, 0, 0.0));
        let remote = h.task_seconds_base(&t, 1, &receipt(0.0, 0, 600_000_000, 0, 0.0));
        assert!(
            remote > local,
            "remote {remote} should exceed local {local}"
        );
    }

    #[test]
    fn io_contention_scales_with_slots() {
        let t = by_name("c1.xlarge").unwrap();
        let h = hw();
        let r = receipt(0.0, 1_000_000_000, 0, 0, 0.0);
        let s1 = h.task_seconds_base(&t, 1, &r) - h.task_startup_s;
        let s4 = h.task_seconds_base(&t, 4, &r) - h.task_startup_s;
        assert!((s4 / s1 - 4.0).abs() < 0.01);
    }

    #[test]
    fn memory_pressure_penalises_io() {
        let t = by_name("c1.medium").unwrap(); // 1.7 GB
        let h = hw();
        let light = receipt(0.0, 100_000_000, 0, 0, 100.0);
        let heavy = receipt(0.0, 100_000_000, 0, 0, 3_000.0); // 2 slots × 3.2GB >> 1.7GB
        let s_light = h.task_seconds_base(&t, 2, &light);
        let s_heavy = h.task_seconds_base(&t, 2, &heavy);
        assert!(s_heavy > 5.0 * s_light, "{s_heavy} vs {s_light}");
    }

    #[test]
    fn task_phases_sum_to_base_duration() {
        let t = by_name("m1.large").unwrap();
        let h = hw();
        let mut r = receipt(3e9, 200_000_000, 50_000_000, 100_000_000, 500.0);
        r.fixed_s = 0.5;
        r.io_ops = 7;
        for slots in [1u32, 2, 4] {
            let base = h.task_seconds_base(&t, slots, &r);
            let phases = h.task_phases(&t, slots, &r);
            assert!(
                (phases.total_s() - base).abs() < 1e-9 * base,
                "slots={slots}: {} vs {base}",
                phases.total_s()
            );
            assert!(phases.compute_s > 0.0 && phases.read_s > 0.0 && phases.write_s > 0.0);
        }
    }

    /// Launch cost is its own phase: the constant `task_startup_s` lands
    /// in `startup_s`, never in `overhead_s` (which holds only the
    /// work-proportional fixed seconds and IO-op latency). Pins the
    /// attribution bug where a one-wave plan's single 2s launch was
    /// reported as 66% executor "overhead".
    #[test]
    fn task_phases_separate_startup_from_overhead() {
        let t = by_name("m1.large").unwrap();
        let h = hw();
        let mut r = receipt(3e9, 200_000_000, 0, 100_000_000, 500.0);
        r.fixed_s = 0.5;
        r.io_ops = 7;
        let phases = h.task_phases(&t, 2, &r);
        assert_eq!(phases.startup_s, h.task_startup_s);
        let expected_overhead = r.fixed_s + r.io_ops as f64 * h.io_op_overhead_s;
        assert!(
            (phases.overhead_s - expected_overhead).abs() < 1e-12,
            "overhead {} vs {expected_overhead}",
            phases.overhead_s
        );
        // An empty task is pure launch: zero overhead, full startup.
        let empty = h.task_phases(&t, 2, &TaskReceipt::default());
        assert_eq!(empty.startup_s, h.task_startup_s);
        assert_eq!(empty.overhead_s, 0.0);
    }

    #[test]
    fn noise_mean_close_to_one() {
        let n = NoiseModel::standard(42);
        let mean: f64 = (0..4000).map(|i| n.factor(0, i, 0)).sum::<f64>() / 4000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_deterministic_per_key() {
        let n = NoiseModel::standard(42);
        assert_eq!(n.factor(1, 2, 0), n.factor(1, 2, 0));
        assert_ne!(n.factor(1, 2, 0), n.factor(1, 2, 1));
        assert_ne!(n.factor(1, 2, 0), n.factor(1, 3, 0));
    }

    #[test]
    fn no_noise_is_exactly_one() {
        assert_eq!(NoiseModel::none().factor(5, 6, 7), 1.0);
    }

    #[test]
    fn faster_instance_is_faster() {
        let h = hw();
        let small = by_name("m1.small").unwrap();
        let big = by_name("cc2.8xlarge").unwrap();
        let r = receipt(1e10, 1_000_000_000, 0, 0, 0.0);
        assert!(h.task_seconds_base(&big, 1, &r) < h.task_seconds_base(&small, 1, &r));
    }
}
