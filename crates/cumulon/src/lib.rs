//! # Cumulon-RS
//!
//! A from-scratch Rust reproduction of *Cumulon: Optimizing Statistical
//! Data Analysis in the Cloud* (Huang, Babu, Yang; SIGMOD 2013): a system
//! for developing and intelligently deploying matrix-based big-data
//! analysis programs in the cloud.
//!
//! This facade re-exports the whole stack:
//!
//! * [`matrix`] — tiled dense/sparse linear algebra (with phantom tiles for
//!   simulated-scale runs);
//! * [`dfs`] — the simulated HDFS-like distributed file system + tile store;
//! * [`cluster`] — the simulated cloud: instance catalog, hardware model,
//!   map-only job scheduler, hourly billing, failure injection;
//! * [`mr`] — the MapReduce/SystemML-style baseline engine;
//! * [`core`] — matrix programs, logical rewrites, split-parameterised
//!   physical plans, calibrated cost models and the deployment optimizer;
//! * [`trace`] — span-level run tracing: Chrome/Perfetto timeline export,
//!   slot-utilization and critical-path reports;
//! * [`workloads`] — GNMF, RSVD, regression, power iteration, chains;
//! * [`serve`] — the multi-tenant optimization service behind
//!   `cumulon serve`;
//! * [`check`] — the cross-layer invariant checker behind `cumulon check`.
//!
//! ## Quickstart
//!
//! ```
//! use cumulon::prelude::*;
//! use std::collections::BTreeMap;
//!
//! // 1. Write a matrix program: G = AᵀA.
//! let mut b = ProgramBuilder::new();
//! let a = b.input("A");
//! let at = b.transpose(a);
//! let g = b.mul(at, a);
//! b.output("G", g);
//! let program = b.build();
//!
//! // 2. Describe the input.
//! let meta = MatrixMeta::new(200, 80, 50);
//! let mut inputs = BTreeMap::new();
//! inputs.insert("A".to_string(), InputDesc::dense(meta));
//!
//! // 3. Ask the optimizer for the cheapest deployment under a deadline.
//! let optimizer = Optimizer::new(idealized_cost_model());
//! let plan = optimizer
//!     .optimize(&program, &inputs, SearchSpace::quick(), Constraint::Deadline(7200.0))
//!     .unwrap();
//!
//! // 4. Provision, load data, run — and verify the result numerically.
//! let cluster = optimizer.provision(&plan).unwrap();
//! let data = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 7 });
//! cluster.store().put_local("A", &data).unwrap();
//! let report = optimizer
//!     .execute_on(&cluster, &program, &inputs, "run0", ExecMode::Real)
//!     .unwrap();
//! assert!(report.cost_dollars > 0.0);
//! let got = cluster.store().get_local("G").unwrap();
//! let expect = data.transpose().matmul(&data).unwrap();
//! assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
//! ```

pub mod cli;

pub use cumulon_check as check;
pub use cumulon_cluster as cluster;
pub use cumulon_core as core;
pub use cumulon_dfs as dfs;
pub use cumulon_lang as lang;
pub use cumulon_matrix as matrix;
pub use cumulon_mr as mr;
pub use cumulon_serve as serve;
pub use cumulon_trace as trace;
pub use cumulon_workloads as workloads;

/// A cost model with closed-form (spec-sheet) coefficients for every
/// catalog instance type — handy for examples and tests that don't want to
/// run the full calibration pass. Production flows should prefer
/// [`cumulon_core::calibrate::calibrate`].
pub fn idealized_cost_model() -> cumulon_core::CostModel {
    let mut m = cumulon_core::CostModel::default();
    for i in cumulon_cluster::instances::catalog() {
        m.insert(
            i.name,
            cumulon_core::OpCoefficients::idealized(i, 2.0, 0.85),
        );
    }
    m
}

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::idealized_cost_model;
    pub use cumulon_cluster::billing::BillingPolicy;
    pub use cumulon_cluster::{
        catalog, Cluster, ClusterSpec, ExecMode, HardwareModel, InstanceType, RunReport,
    };
    pub use cumulon_core::expr::{InputDesc, ProgramBuilder, UnaryOp};
    pub use cumulon_core::{
        Constraint, CostModel, DeploymentPlan, Optimizer, Program, SearchSpace,
    };
    pub use cumulon_dfs::{Dfs, DfsConfig, TileStore};
    pub use cumulon_lang::{compile_source, CompiledScript};
    pub use cumulon_matrix::gen::Generator;
    pub use cumulon_matrix::{LocalMatrix, MatrixMeta, Tile};
    pub use cumulon_mr::{MrConfig, MrEngine, MrOp, MrProgram, MulStrategy};
    pub use cumulon_workloads::chains::MulChain;
    pub use cumulon_workloads::gnmf::Gnmf;
    pub use cumulon_workloads::power::PowerIteration;
    pub use cumulon_workloads::regression::Regression;
    pub use cumulon_workloads::rsvd::Rsvd;
    pub use cumulon_workloads::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn idealized_model_covers_catalog() {
        let m = super::idealized_cost_model();
        for i in cumulon_cluster::instances::catalog() {
            assert!(m.for_instance(i.name).is_some(), "{} missing", i.name);
        }
    }
}
