//! The `cumulon` command-line interface: compile a script, optimize its
//! deployment, and run it on the simulated cloud.
//!
//! ```text
//! cumulon plan  <script> --input A=20000x20000 [--deadline MIN|--budget $] [--max-nodes N]
//!               [--spot [--bid FRAC]]
//! cumulon run   <script> --input A=400x200 --instance m1.large --nodes 4 [--slots S] [--real]
//!               [--spot [--bid FRAC]] [--elastic]
//! cumulon explain <script> --input A=1000x1000[@0.01]
//! cumulon check [--quick] [--report FILE.json]
//! ```
//!
//! Input specs are `NAME=ROWSxCOLS[@DENSITY][:TILE]`; matrices are
//! generator-backed (seeded, deterministic). Density `< 1` implies sparse
//! storage.

use std::collections::BTreeMap;

use cumulon_cluster::{
    Cluster, ClusterSpec, ExecMode, FailurePlan, SchedulerConfig, SpotMarket, Trace,
};
use cumulon_core::error::CoreError;
use cumulon_core::expr::InputDesc;
use cumulon_core::recovery::RecoveryConfig;
use cumulon_core::{
    Constraint, DeploymentSearch, Optimizer, Result, SearchSpace, SpotHazard, SpotSearchSpace,
};
use cumulon_lang::{compile_source, CompiledScript};
use cumulon_workloads::{run_elastic, ElasticPolicy, Workload};

// Input parsing moved to `cumulon-lang` so the CLI and `cumulon serve`
// share it; re-exported here for source compatibility.
pub use cumulon_lang::InputSpec;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `plan`: deployment optimization.
    Plan {
        /// Script path.
        script: String,
        /// Input specs.
        inputs: Vec<InputSpec>,
        /// Time/budget constraint.
        constraint: Constraint,
        /// Largest cluster to consider.
        max_nodes: u32,
        /// Extend the search to {on-demand, spot(bid)} × checkpoint
        /// interval, minimizing expected cost under the deadline.
        spot: bool,
        /// Restrict the spot search to a single bid, as a fraction of the
        /// on-demand list price.
        bid: Option<f64>,
    },
    /// `run`: execute on a chosen cluster.
    Run {
        /// Script path.
        script: String,
        /// Input specs.
        inputs: Vec<InputSpec>,
        /// Instance type name.
        instance: String,
        /// Node count.
        nodes: u32,
        /// Slots per node (0 = one per core).
        slots: u32,
        /// Real tile math instead of phantom.
        real: bool,
        /// Worker threads for task compute (0 = all host cores, 1 = the
        /// sequential legacy path). Results are identical either way.
        threads: usize,
        /// Materialize encoded bytes on every DFS tile write instead of
        /// zero-copy handles. Results are identical; useful for testing
        /// the byte plane.
        materialize_bytes: bool,
        /// Write a Chrome `trace_event` JSON timeline of the run here
        /// (load in Perfetto or `chrome://tracing`). Tracing never
        /// changes results.
        trace: Option<String>,
        /// Run the upper half of the fleet as spot capacity under a
        /// synthetic price trace: when the market outbids us, those
        /// nodes are reclaimed in one correlated revocation (with a
        /// warning window the scheduler drains into) and the run
        /// survives via lineage recovery.
        spot: bool,
        /// Spot bid as a fraction of the on-demand list price
        /// (default 0.5). Only meaningful with `--spot`.
        bid: Option<f64>,
        /// Re-provision at the end of the run: refit the cost model from
        /// the traced execution and replace revoked capacity with
        /// on-demand nodes, topping the fleet back up to `--nodes`.
        elastic: bool,
        /// Threads *inside* each tile kernel (1 = serial, 0 = all host
        /// cores). Bitwise-identical results at any setting; useful when
        /// a run has fewer concurrent tasks than cores.
        kernel_threads: usize,
        /// Host-memory budget in bytes for resident tile payloads
        /// (0 = unbounded). Cold tiles spill to a content-addressed blob
        /// store on disk and are re-admitted transparently on read;
        /// results are bitwise-identical at any budget.
        memory_budget: u64,
        /// Directory for spill segment files (default: a per-process
        /// temp directory). Only meaningful with `--memory-budget`.
        spill_dir: Option<String>,
        /// Spill-aware scheduling: resolve tasks whose hinted input tiles
        /// are RAM-resident first and prefetch up to this many spilled
        /// frontier tiles per wave, turning synchronous readbacks into
        /// overlapped ones. `0` disables. Results, receipts and simulated
        /// time are bitwise-identical at any depth (the
        /// `spill-schedule-transparency` invariant). Only meaningful with
        /// `--memory-budget`.
        prefetch_depth: usize,
    },
    /// `trace`: execute like `run`, then print the critical-path,
    /// slot-utilization and estimate-vs-actual reports for the traced
    /// execution (optionally also exporting the timeline JSON).
    Trace {
        /// Script path.
        script: String,
        /// Input specs.
        inputs: Vec<InputSpec>,
        /// Instance type name.
        instance: String,
        /// Node count.
        nodes: u32,
        /// Slots per node (0 = one per core).
        slots: u32,
        /// Real tile math instead of phantom.
        real: bool,
        /// Worker threads for task compute (0 = all host cores).
        threads: usize,
        /// Also write the Chrome `trace_event` JSON timeline here.
        out_json: Option<String>,
        /// Threads inside each tile kernel (1 = serial, 0 = all cores).
        kernel_threads: usize,
    },
    /// `explain`: show the compiled program and physical plan.
    Explain {
        /// Script path.
        script: String,
        /// Input specs.
        inputs: Vec<InputSpec>,
    },
    /// `check`: run the cross-layer invariant suite (`cumulon-check`)
    /// and exit non-zero on any violation.
    Check {
        /// Reduced lattice for the CI tier-1 budget.
        quick: bool,
        /// Also write the machine-readable violation report (JSON schema
        /// `cumulon-check-v1`) to this path.
        report: Option<String>,
    },
    /// `serve`: run the long-lived optimization service (`cumulon-serve`)
    /// — concurrent `plan`/`optimize`/`run`/`check-status` requests over
    /// newline-delimited JSON (`cumulon-serve-v1`).
    Serve {
        /// Listen address (`HOST:PORT`; port 0 lets the OS pick).
        addr: String,
        /// Maximum queued runs before `queue-full` backpressure.
        queue_depth: usize,
        /// Worker threads executing queued runs.
        run_workers: usize,
        /// Scheduler threads per run (sizes the shared speculation pool).
        threads: usize,
    },
    /// `calibrate`: wall-clock-profile the tile kernels on this host,
    /// re-fit the cost model's CPU coefficients from the measurements,
    /// and report measured vs model-implied flop rates.
    Calibrate {
        /// Instance type whose coefficients to re-fit.
        instance: String,
        /// Trimmed measurement battery (CI budgets).
        quick: bool,
        /// Threads inside each tile kernel while profiling (1 = serial,
        /// 0 = all cores).
        kernel_threads: usize,
        /// Write the profile + refit coefficients (JSON schema
        /// `cumulon-calibration-v1`) to this path.
        json: Option<String>,
    },
}

/// Parses CLI arguments (past the binary name).
pub fn parse_args(args: &[String]) -> Result<Command> {
    let usage = || {
        CoreError::Invariant(
            "usage: cumulon <plan|run|trace|explain> <script> --input NAME=RxC[@D][:T] ...\n\
             plan:    [--deadline MIN | --budget DOLLARS] [--max-nodes N]\n\
                      [--spot [--bid FRAC]]   (spot-vs-on-demand × checkpoint\n\
                      interval search under the deadline)\n\
             run:     --instance TYPE --nodes N [--slots S] [--real] [--threads T]\n\
                      [--kernel-threads K] [--materialize-bytes] [--trace FILE.json]\n\
                      [--memory-budget BYTES [--spill-dir PATH] [--prefetch-depth N]]\n\
                      [--spot [--bid FRAC]] [--elastic]\n\
             trace:   --instance TYPE --nodes N [--slots S] [--real] [--threads T]\n\
                      [--kernel-threads K] [--trace FILE.json]   (prints critical-\n\
                      path, utilization and estimate-diff reports)\n\
             check:   cumulon check [--quick] [--report FILE.json]   (runs the\n\
                      cross-layer invariant suite; non-zero exit on violation)\n\
             calibrate: cumulon calibrate [--instance TYPE] [--quick]\n\
                      [--kernel-threads K] [--json FILE.json]   (profiles the\n\
                      tile kernels on this host and re-fits the cost model's\n\
                      CPU coefficients from the measurements)\n\
             serve:   cumulon serve [--addr HOST:PORT] [--queue-depth N]\n\
                      [--run-workers N] [--threads T]   (long-running multi-\n\
                      tenant service; newline-delimited JSON, schema\n\
                      cumulon-serve-v1 — see README \"cumulon serve\")"
                .to_string(),
        )
    };
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?.clone();
    // `check` takes no script or inputs — it has its own tiny flag set.
    if cmd == "check" {
        let mut quick = false;
        let mut report = None;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--report" => {
                    report =
                        Some(it.next().cloned().ok_or_else(|| {
                            CoreError::Invariant("--report needs a file path".into())
                        })?)
                }
                other => {
                    return Err(CoreError::Invariant(format!(
                        "unknown argument '{other}' for check"
                    )));
                }
            }
        }
        return Ok(Command::Check { quick, report });
    }
    // `serve` takes no script either: programs arrive over the wire.
    if cmd == "serve" {
        let mut addr = "127.0.0.1:7070".to_string();
        let mut queue_depth = 8usize;
        let mut run_workers = 2usize;
        let mut threads = 2usize;
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CoreError::Invariant(format!("{flag} needs a value")))
            };
            let int = |flag: &str, v: String| {
                v.parse::<usize>()
                    .map_err(|_| CoreError::Invariant(format!("{flag} needs an integer")))
            };
            match arg.as_str() {
                "--addr" => addr = value("--addr")?,
                "--queue-depth" => queue_depth = int("--queue-depth", value("--queue-depth")?)?,
                "--run-workers" => run_workers = int("--run-workers", value("--run-workers")?)?,
                "--threads" => threads = int("--threads", value("--threads")?)?,
                other => {
                    return Err(CoreError::Invariant(format!(
                        "unknown argument '{other}' for serve"
                    )));
                }
            }
        }
        if queue_depth == 0 || run_workers == 0 {
            return Err(CoreError::Invariant(
                "--queue-depth and --run-workers must be positive".into(),
            ));
        }
        return Ok(Command::Serve {
            addr,
            queue_depth,
            run_workers,
            threads,
        });
    }
    // `calibrate` likewise takes no script: it profiles the host itself.
    if cmd == "calibrate" {
        let mut instance = "m1.large".to_string();
        let mut quick = false;
        let mut kernel_threads = 1usize;
        let mut json = None;
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CoreError::Invariant(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--instance" => instance = value("--instance")?,
                "--quick" => quick = true,
                "--kernel-threads" => {
                    kernel_threads = value("--kernel-threads")?.parse().map_err(|_| {
                        CoreError::Invariant("--kernel-threads needs an integer".into())
                    })?
                }
                "--json" => json = Some(value("--json")?),
                other => {
                    return Err(CoreError::Invariant(format!(
                        "unknown argument '{other}' for calibrate"
                    )));
                }
            }
        }
        return Ok(Command::Calibrate {
            instance,
            quick,
            kernel_threads,
            json,
        });
    }
    let script = it.next().ok_or_else(usage)?.clone();
    let mut inputs = Vec::new();
    let mut deadline: Option<f64> = None;
    let mut budget: Option<f64> = None;
    let mut max_nodes = 64u32;
    let mut instance: Option<String> = None;
    let mut nodes: Option<u32> = None;
    let mut slots = 0u32;
    let mut real = false;
    let mut threads = 0usize;
    let mut kernel_threads = 1usize;
    let mut materialize_bytes = false;
    let mut trace: Option<String> = None;
    let mut spot = false;
    let mut bid: Option<f64> = None;
    let mut elastic = false;
    let mut memory_budget = 0u64;
    let mut spill_dir: Option<String> = None;
    let mut prefetch_depth = 0usize;

    let next_value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String> {
        it.next()
            .cloned()
            .ok_or_else(|| CoreError::Invariant(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--input" => inputs.push(InputSpec::parse(&next_value(&mut it, "--input")?)?),
            "--deadline" => {
                deadline = Some(
                    next_value(&mut it, "--deadline")?
                        .parse::<f64>()
                        .map_err(|_| CoreError::Invariant("--deadline needs minutes".into()))?
                        * 60.0,
                )
            }
            "--budget" => {
                budget = Some(
                    next_value(&mut it, "--budget")?
                        .parse::<f64>()
                        .map_err(|_| {
                            CoreError::Invariant("--budget needs a dollar amount".into())
                        })?,
                )
            }
            "--max-nodes" => {
                max_nodes = next_value(&mut it, "--max-nodes")?
                    .parse()
                    .map_err(|_| CoreError::Invariant("--max-nodes needs an integer".into()))?
            }
            "--instance" => instance = Some(next_value(&mut it, "--instance")?),
            "--nodes" => {
                nodes = Some(
                    next_value(&mut it, "--nodes")?
                        .parse()
                        .map_err(|_| CoreError::Invariant("--nodes needs an integer".into()))?,
                )
            }
            "--slots" => {
                slots = next_value(&mut it, "--slots")?
                    .parse()
                    .map_err(|_| CoreError::Invariant("--slots needs an integer".into()))?
            }
            "--real" => real = true,
            "--materialize-bytes" => materialize_bytes = true,
            "--spot" => spot = true,
            "--elastic" => elastic = true,
            "--bid" => {
                let frac = next_value(&mut it, "--bid")?.parse::<f64>().map_err(|_| {
                    CoreError::Invariant("--bid needs a fraction of the list price".into())
                })?;
                if !(frac > 0.0 && frac.is_finite()) {
                    return Err(CoreError::Invariant(
                        "--bid must be a positive fraction of the list price".into(),
                    ));
                }
                bid = Some(frac);
            }
            "--trace" => trace = Some(next_value(&mut it, "--trace")?),
            "--threads" => {
                threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| CoreError::Invariant("--threads needs an integer".into()))?
            }
            "--kernel-threads" => {
                kernel_threads = next_value(&mut it, "--kernel-threads")?
                    .parse()
                    .map_err(|_| CoreError::Invariant("--kernel-threads needs an integer".into()))?
            }
            "--memory-budget" => {
                memory_budget = next_value(&mut it, "--memory-budget")?
                    .parse()
                    .map_err(|_| {
                        CoreError::Invariant("--memory-budget needs a byte count".into())
                    })?
            }
            "--spill-dir" => spill_dir = Some(next_value(&mut it, "--spill-dir")?),
            "--prefetch-depth" => {
                prefetch_depth = next_value(&mut it, "--prefetch-depth")?
                    .parse()
                    .map_err(|_| {
                        CoreError::Invariant("--prefetch-depth needs a tile count".into())
                    })?
            }
            other => {
                return Err(CoreError::Invariant(format!("unknown argument '{other}'")));
            }
        }
    }
    if inputs.is_empty() {
        return Err(CoreError::Invariant(
            "at least one --input is required".into(),
        ));
    }
    if bid.is_some() && !spot {
        return Err(CoreError::Invariant("--bid requires --spot".into()));
    }
    if (spot || elastic) && !matches!(cmd.as_str(), "plan" | "run") {
        return Err(CoreError::Invariant(format!(
            "--spot/--elastic only apply to plan and run, not {cmd}"
        )));
    }
    if (memory_budget != 0 || spill_dir.is_some() || prefetch_depth != 0) && cmd != "run" {
        return Err(CoreError::Invariant(format!(
            "--memory-budget/--spill-dir/--prefetch-depth only apply to run, not {cmd}"
        )));
    }
    if spill_dir.is_some() && memory_budget == 0 {
        return Err(CoreError::Invariant(
            "--spill-dir requires --memory-budget".into(),
        ));
    }
    if prefetch_depth != 0 && memory_budget == 0 {
        return Err(CoreError::Invariant(
            "--prefetch-depth requires --memory-budget (nothing spills without one)".into(),
        ));
    }
    match cmd.as_str() {
        "plan" => {
            if elastic {
                return Err(CoreError::Invariant("--elastic only applies to run".into()));
            }
            let constraint = match (deadline, budget) {
                (Some(d), None) => Constraint::Deadline(d),
                (None, Some(b)) => Constraint::Budget(b),
                (None, None) => Constraint::Deadline(3_600.0),
                (Some(_), Some(_)) => {
                    return Err(CoreError::Invariant(
                        "pick one of --deadline and --budget".into(),
                    ))
                }
            };
            if spot && matches!(constraint, Constraint::Budget(_)) {
                return Err(CoreError::Invariant(
                    "--spot prices rework against a deadline; use --deadline, not --budget".into(),
                ));
            }
            Ok(Command::Plan {
                script,
                inputs,
                constraint,
                max_nodes,
                spot,
                bid,
            })
        }
        "run" => {
            let instance =
                instance.ok_or_else(|| CoreError::Invariant("run needs --instance".into()))?;
            let nodes = nodes.ok_or_else(|| CoreError::Invariant("run needs --nodes".into()))?;
            if elastic && trace.is_some() {
                return Err(CoreError::Invariant(
                    "--elastic drives its own traced run; drop --trace".into(),
                ));
            }
            Ok(Command::Run {
                script,
                inputs,
                instance,
                nodes,
                slots,
                real,
                threads,
                materialize_bytes,
                trace,
                spot,
                bid,
                elastic,
                kernel_threads,
                memory_budget,
                spill_dir,
                prefetch_depth,
            })
        }
        "trace" => {
            let instance =
                instance.ok_or_else(|| CoreError::Invariant("trace needs --instance".into()))?;
            let nodes = nodes.ok_or_else(|| CoreError::Invariant("trace needs --nodes".into()))?;
            Ok(Command::Trace {
                script,
                inputs,
                instance,
                nodes,
                slots,
                real,
                threads,
                out_json: trace,
                kernel_threads,
            })
        }
        "explain" => Ok(Command::Explain { script, inputs }),
        _ => Err(usage()),
    }
}

fn load_script(path: &str) -> Result<CompiledScript> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| CoreError::Invariant(format!("cannot read {path}: {e}")))?;
    compile_source(&source)
}

fn check_inputs(
    compiled: &CompiledScript,
    specs: &[InputSpec],
) -> Result<BTreeMap<String, InputDesc>> {
    let mut map = BTreeMap::new();
    for s in specs {
        map.insert(s.name.clone(), s.desc());
    }
    for needed in &compiled.inputs {
        if !map.contains_key(needed) {
            return Err(CoreError::Invariant(format!(
                "script input '{needed}' has no --input specification"
            )));
        }
    }
    Ok(map)
}

/// Provisions the requested cluster and registers the generated inputs —
/// the shared front half of `run` and `trace`.
fn provision_for_run(
    inputs: &[InputSpec],
    instance: &str,
    nodes: u32,
    slots: u32,
) -> Result<Cluster> {
    let spec_slots = if slots == 0 {
        cumulon_cluster::instances::by_name(instance)
            .map(|i| i.cores)
            .unwrap_or(1)
    } else {
        slots
    };
    let cluster = Cluster::provision(
        ClusterSpec::named(instance, nodes, spec_slots).map_err(CoreError::from)?,
    )
    .map_err(CoreError::from)?;
    for (i, s) in inputs.iter().enumerate() {
        cluster
            .store()
            .register_generated(&s.name, s.meta(), s.generator(i as u64 + 1))
            .map_err(CoreError::from)?;
    }
    Ok(cluster)
}

/// Runs a compiled script on a provisioned cluster, recording into
/// `trace` when the handle is enabled.
#[allow(clippy::too_many_arguments)]
fn run_traced(
    optimizer: &Optimizer,
    cluster: &Cluster,
    compiled: &CompiledScript,
    descs: &BTreeMap<String, InputDesc>,
    real: bool,
    sched: SchedulerConfig,
    failures: &FailurePlan,
    trace: &Trace,
) -> Result<cumulon_cluster::RunReport> {
    let mode = if real {
        ExecMode::Real
    } else {
        ExecMode::Simulated
    };
    optimizer.execute_on_traced(
        cluster,
        &compiled.program,
        descs,
        "cli",
        mode,
        sched,
        failures,
        RecoveryConfig::default(),
        trace,
    )
}

/// A compiled script wrapped as a one-iteration [`Workload`], so the
/// elastic driver (`run --elastic`) can trace, refit and re-provision
/// around it. Inputs are registered by [`provision_for_run`], so `setup`
/// is a no-op.
struct ScriptWorkload {
    program: cumulon_core::Program,
    descs: BTreeMap<String, InputDesc>,
}

impl Workload for ScriptWorkload {
    fn name(&self) -> &'static str {
        "cli"
    }

    fn inputs(&self, _iter: usize) -> BTreeMap<String, InputDesc> {
        self.descs.clone()
    }

    fn setup(&self, _store: &cumulon_dfs::TileStore) -> Result<()> {
        Ok(())
    }

    fn program(&self, _iter: usize) -> cumulon_core::Program {
        self.program.clone()
    }
}

/// Compiles a spot position for `run --spot`: the upper half of the fleet
/// is spot capacity on a deterministic synthetic price trace around the
/// market's typical fraction of the list price; every time the trace
/// outbids us those nodes are reclaimed together, with a warning window
/// the scheduler drains into. The trace's price steps are scaled to
/// `horizon_s` (the run's estimated makespan) so mid-run crossings are
/// actually exercised regardless of problem size. Returns the injected
/// failure plan plus a human-readable description of the position.
fn spot_failures(
    instance: &str,
    nodes: u32,
    bid_fraction: f64,
    horizon_s: f64,
) -> Result<(FailurePlan, String)> {
    let list = cumulon_cluster::instances::by_name(instance)
        .map(|i| i.price_per_hour)
        .ok_or_else(|| CoreError::Invariant(format!("unknown instance '{instance}'")))?;
    let hazard = SpotHazard::typical();
    let spot_nodes: Vec<u32> = (nodes.div_ceil(2)..nodes).collect();
    let step_s = (horizon_s / 12.0).max(1e-3);
    let market = SpotMarket::synthetic(42, hazard.mean_price_fraction * list, 0.6, step_s, 48)
        .with_bid(bid_fraction * list)
        .with_warning_lead(0.4 * step_s);
    let revocations = market.revocations(&spot_nodes);
    let line = format!(
        "spot   : {} node(s) bid ${:.4}/h against mean ${:.4}/h (list ${:.4}/h): \
         {} revocation event(s) on a {:.1}s-step trace",
        spot_nodes.len(),
        market.bid,
        hazard.mean_price_fraction * list,
        list,
        revocations.len(),
        step_s,
    );
    Ok((
        FailurePlan {
            revocations,
            ..Default::default()
        },
        line,
    ))
}

fn write_trace_json(
    log: &cumulon_cluster::TraceLog,
    path: &str,
    out: &mut impl std::io::Write,
) -> Result<()> {
    std::fs::write(path, log.to_chrome_json())
        .map_err(|e| CoreError::Invariant(format!("cannot write {path}: {e}")))?;
    writeln!(
        out,
        "trace  : {} spans -> {path} (load in Perfetto or chrome://tracing)",
        log.tasks.len()
    )
    .map_err(|e| CoreError::Invariant(format!("write failed: {e}")))?;
    Ok(())
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn execute(cmd: &Command, out: &mut impl std::io::Write) -> Result<()> {
    let w = |e: std::io::Error| CoreError::Invariant(format!("write failed: {e}"));
    match cmd {
        Command::Plan {
            script,
            inputs,
            constraint,
            max_nodes,
            spot,
            bid,
        } => {
            let compiled = load_script(script)?;
            let descs = check_inputs(&compiled, inputs)?;
            let space = SearchSpace {
                max_nodes: *max_nodes,
                ..Default::default()
            };
            if *spot {
                let Constraint::Deadline(deadline_s) = *constraint else {
                    return Err(CoreError::Invariant(
                        "--spot needs a deadline to price rework against".into(),
                    ));
                };
                let model = crate::idealized_cost_model();
                let search = DeploymentSearch::new(&model, space);
                let sspace = SpotSearchSpace {
                    bid_fractions: bid
                        .map(|b| vec![b])
                        .unwrap_or_else(|| SpotSearchSpace::default().bid_fractions),
                    ..Default::default()
                };
                let (plan, choice) =
                    search.optimize_spot(&compiled.program, &descs, deadline_s, &sspace)?;
                let curve = search.spot_curve(&plan, &sspace);
                writeln!(out, "inputs : {:?}", compiled.inputs).map_err(w)?;
                writeln!(out, "outputs: {:?}", compiled.outputs()).map_err(w)?;
                writeln!(out, "chosen : {}", plan.summary()).map_err(w)?;
                writeln!(out, "procure: {}", choice.summary()).map_err(w)?;
                writeln!(
                    out,
                    "curve  : {} option(s) under deadline {:.0}s; on-demand reference: {}",
                    curve.len(),
                    deadline_s,
                    curve[0].summary()
                )
                .map_err(w)?;
                return Ok(());
            }
            let optimizer = Optimizer::new(crate::idealized_cost_model());
            let plan = optimizer.optimize(&compiled.program, &descs, space, *constraint)?;
            writeln!(out, "inputs : {:?}", compiled.inputs).map_err(w)?;
            writeln!(out, "outputs: {:?}", compiled.outputs()).map_err(w)?;
            writeln!(out, "chosen : {}", plan.summary()).map_err(w)?;
            writeln!(
                out,
                "plan   : {} jobs, {} tasks",
                plan.plan.jobs.len(),
                plan.plan.total_tasks()
            )
            .map_err(w)?;
            for (idx, job) in plan.plan.jobs.iter().enumerate() {
                writeln!(
                    out,
                    "  [{idx}] {:<6} -> {:?} ({} tasks)",
                    job.op_label(),
                    job.output_names(),
                    job.task_count()
                )
                .map_err(w)?;
            }
            Ok(())
        }
        Command::Run {
            script,
            inputs,
            instance,
            nodes,
            slots,
            real,
            threads,
            materialize_bytes,
            trace,
            spot,
            bid,
            elastic,
            kernel_threads,
            memory_budget,
            spill_dir,
            prefetch_depth,
        } => {
            cumulon_cluster::set_default_threads(*threads);
            cumulon_matrix::set_kernel_threads(*kernel_threads);
            let compiled = load_script(script)?;
            let descs = check_inputs(&compiled, inputs)?;
            let cluster = provision_for_run(inputs, instance, *nodes, *slots)?;
            cluster.store().set_materialize_bytes(*materialize_bytes);
            if *memory_budget > 0 {
                let config = cumulon_dfs::SpillConfig {
                    budget_bytes: *memory_budget,
                    dir: spill_dir.as_ref().map(std::path::PathBuf::from),
                    compress: true,
                };
                cluster
                    .store()
                    .set_memory_budget(&config)
                    .map_err(CoreError::from)?;
                writeln!(
                    out,
                    "spill  : resident tile budget {memory_budget} B, cold tiles spill to {}",
                    spill_dir.as_deref().unwrap_or("a temp directory")
                )
                .map_err(w)?;
            }
            let sched = if *prefetch_depth > 0 {
                SchedulerConfig::default().with_prefetch(*prefetch_depth)
            } else {
                SchedulerConfig::default()
            };
            let failures = if *spot {
                // Scale the price trace to the run so crossings land
                // mid-run; an estimate failure falls back to an hour.
                let horizon = Optimizer::new(crate::idealized_cost_model())
                    .estimate_on(&cluster, &compiled.program, &descs)
                    .map(|e| e.makespan_s)
                    .unwrap_or(3_600.0);
                let (plan, line) = spot_failures(instance, *nodes, bid.unwrap_or(0.5), horizon)?;
                writeln!(out, "{line}").map_err(w)?;
                plan
            } else {
                FailurePlan::default()
            };
            if *elastic {
                // The elastic driver traces the run itself, refits the
                // cost model from the spans, and we top the fleet back up
                // afterwards — replacing revoked spot capacity with
                // on-demand nodes.
                let workload = ScriptWorkload {
                    program: compiled.program.clone(),
                    descs: descs.clone(),
                };
                let mut optimizer = Optimizer::new(crate::idealized_cost_model());
                let mode = if *real {
                    ExecMode::Real
                } else {
                    ExecMode::Simulated
                };
                let run = run_elastic(
                    &workload,
                    &mut optimizer,
                    &cluster,
                    1,
                    mode,
                    sched,
                    |_| failures.clone(),
                    RecoveryConfig::default(),
                    ElasticPolicy::replace_at(*nodes),
                )?;
                writeln!(out, "{}", run.reports[0].summary()).map_err(w)?;
                for d in &run.decisions {
                    writeln!(
                        out,
                        "elastic: boundary {}: refit {} ({} sample(s)), {}",
                        d.after_iter, d.refit, d.samples, d.reason
                    )
                    .map_err(w)?;
                }
                let live = cluster.live_nodes();
                if live < *nodes {
                    let grown = cluster.grow(*nodes - live);
                    writeln!(
                        out,
                        "elastic: replaced {} revoked node(s) with on-demand capacity \
                         ({} live)",
                        grown.len(),
                        cluster.live_nodes()
                    )
                    .map_err(w)?;
                }
            } else {
                let optimizer = Optimizer::new(crate::idealized_cost_model());
                let handle = if trace.is_some() {
                    Trace::enabled()
                } else {
                    Trace::disabled()
                };
                let report = run_traced(
                    &optimizer, &cluster, &compiled, &descs, *real, sched, &failures, &handle,
                )?;
                writeln!(out, "{}", report.summary()).map_err(w)?;
                for job in &report.jobs {
                    writeln!(
                        out,
                        "  job {:<12} {:>8.1}s  {} tasks, locality {:.0}%",
                        job.name,
                        job.duration_s(),
                        job.tasks.len(),
                        100.0 * job.locality_rate()
                    )
                    .map_err(w)?;
                }
                if let Some(path) = trace {
                    let log = handle.snapshot().expect("trace handle is enabled");
                    write_trace_json(&log, path, out)?;
                }
            }
            if *memory_budget > 0 {
                if let Some(stats) = cluster.store().dfs().spill_stats() {
                    let ratio = if stats.blob.bytes_written > 0 {
                        stats.blob.raw_bytes_written as f64 / stats.blob.bytes_written as f64
                    } else {
                        1.0
                    };
                    writeln!(
                        out,
                        "spill  : {} eviction(s), {} readmission(s), {} B spilled \
                         ({ratio:.2}x compression), {} B read back",
                        stats.evictions,
                        stats.readmissions,
                        stats.spilled_bytes_total,
                        stats.readback_bytes_total
                    )
                    .map_err(w)?;
                    if *prefetch_depth > 0 {
                        writeln!(
                            out,
                            "spill  : {} tile(s) prefetched, {} B of readback \
                             overlapped ahead of demand",
                            stats.prefetched_files, stats.readback_bytes_avoided
                        )
                        .map_err(w)?;
                    }
                }
            }
            if *real {
                for name in compiled.outputs() {
                    let m = cluster.store().get_local(name)?;
                    writeln!(
                        out,
                        "output {name}: {}x{}, ‖·‖_F = {:.4}",
                        m.meta().rows,
                        m.meta().cols,
                        m.frob_norm()
                    )
                    .map_err(w)?;
                }
            }
            Ok(())
        }
        Command::Trace {
            script,
            inputs,
            instance,
            nodes,
            slots,
            real,
            threads,
            out_json,
            kernel_threads,
        } => {
            cumulon_cluster::set_default_threads(*threads);
            cumulon_matrix::set_kernel_threads(*kernel_threads);
            let compiled = load_script(script)?;
            let descs = check_inputs(&compiled, inputs)?;
            let cluster = provision_for_run(inputs, instance, *nodes, *slots)?;
            let optimizer = Optimizer::new(crate::idealized_cost_model());
            let handle = Trace::enabled();
            let report = run_traced(
                &optimizer,
                &cluster,
                &compiled,
                &descs,
                *real,
                SchedulerConfig::default(),
                &FailurePlan::default(),
                &handle,
            )?;
            let log = handle.snapshot().expect("trace handle is enabled");
            writeln!(out, "{}", report.summary()).map_err(w)?;
            if let Some(path) = out_json {
                write_trace_json(&log, path, out)?;
            }
            writeln!(out).map_err(w)?;
            writeln!(out, "{}", log.critical_path().render()).map_err(w)?;
            writeln!(out, "{}", log.utilization().render()).map_err(w)?;
            let (phases, predicted_makespan) =
                optimizer.predict_phases_on(&cluster, &compiled.program, &descs)?;
            writeln!(
                out,
                "{}",
                log.diff_against(phases, predicted_makespan).render()
            )
            .map_err(w)?;
            Ok(())
        }
        Command::Explain { script, inputs } => {
            let compiled = load_script(script)?;
            let descs = check_inputs(&compiled, inputs)?;
            let plan = cumulon_core::lower::build_plan(
                &compiled.program,
                &descs,
                &cumulon_core::lower::UnitSplits,
                "x",
            )?;
            writeln!(out, "inputs : {:?}", compiled.inputs).map_err(w)?;
            writeln!(out, "outputs: {:?}", compiled.outputs()).map_err(w)?;
            writeln!(
                out,
                "logical: {} expression nodes",
                compiled.program.nodes.len()
            )
            .map_err(w)?;
            writeln!(out, "physical plan ({} jobs):", plan.jobs.len()).map_err(w)?;
            for (idx, job) in plan.jobs.iter().enumerate() {
                writeln!(
                    out,
                    "  [{idx}] {:<6} deps {:?} -> {:?} ({} tasks)",
                    job.op_label(),
                    plan.deps[idx],
                    job.output_names(),
                    job.task_count()
                )
                .map_err(w)?;
            }
            Ok(())
        }
        Command::Check { quick, report } => {
            let checks = cumulon_check::run_checks(&cumulon_check::CheckOptions { quick: *quick })?;
            writeln!(out, "{}", checks.render()).map_err(w)?;
            // Write the machine-readable report before failing, so CI can
            // upload it as an artifact even when the gate trips.
            if let Some(path) = report {
                std::fs::write(path, checks.to_json())
                    .map_err(|e| CoreError::Invariant(format!("cannot write {path}: {e}")))?;
                writeln!(out, "report : {path}").map_err(w)?;
            }
            if checks.passed() {
                Ok(())
            } else {
                Err(CoreError::Invariant(format!(
                    "{} invariant violation(s) — see report above",
                    checks.violations().len()
                )))
            }
        }
        Command::Serve {
            addr,
            queue_depth,
            run_workers,
            threads,
        } => {
            let config = cumulon_serve::ServiceConfig {
                queue_depth: *queue_depth,
                run_workers: *run_workers,
                threads: *threads,
                ..Default::default()
            };
            let server = cumulon_serve::Server::start(addr, config)?;
            writeln!(
                out,
                "serve  : listening on {} ({} run worker(s), queue depth {}, \
                 {} scheduler thread(s)); schema cumulon-serve-v1, one JSON \
                 request per line",
                server.addr(),
                run_workers,
                queue_depth,
                threads
            )
            .map_err(w)?;
            out.flush().map_err(w)?;
            // Daemon semantics: serve until the process is killed.
            // (`park` can wake spuriously, hence the loop.)
            loop {
                std::thread::park();
            }
        }
        Command::Calibrate {
            instance,
            quick,
            kernel_threads,
            json,
        } => {
            let inst = cumulon_cluster::instances::by_name(instance)
                .ok_or_else(|| CoreError::Invariant(format!("unknown instance '{instance}'")))?;
            cumulon_matrix::set_kernel_threads(*kernel_threads);
            let profile = cumulon_core::calibrate::KernelProfile::measure(*quick);
            cumulon_matrix::set_kernel_threads(1);
            writeln!(
                out,
                "host   : simd={} kernel-threads={}",
                profile.simd_level, kernel_threads
            )
            .map_err(w)?;
            for s in &profile.samples {
                writeln!(
                    out,
                    "  {:<11} n={:<4} {:>7.2} GFLOP/s  ({:.3} ms)",
                    s.kernel,
                    s.n,
                    s.gflops(),
                    s.seconds * 1e3
                )
                .map_err(w)?;
            }
            let base = cumulon_core::OpCoefficients::idealized(&inst, 2.0, 0.85);
            let cpu_fit = cumulon_core::calibrate::refit_cpu_from_kernels(&base, &inst, &profile)?;
            // Disk tier: measure the host blob store's spill/readback
            // throughput and fit the c₇ coefficient from it, the same way
            // the kernel battery fits the CPU term.
            let spill = cumulon_core::calibrate::SpillProfile::measure(*quick)?;
            let refit = cumulon_core::calibrate::refit_disk_tier(&cpu_fit, &spill);
            let before = cumulon_core::estimate::model_implied_gflops(&base, &inst);
            let after = cumulon_core::estimate::model_implied_gflops(&refit, &inst);
            writeln!(
                out,
                "model  : {instance} implied {before:.2} -> {after:.2} GFLOP/s \
                 (measured dense peak {:.2})",
                profile.dense_gflops()
            )
            .map_err(w)?;
            writeln!(
                out,
                "spill  : writeback {:.0} MB/s, readback {:.0} MB/s -> c7 {:e} s/B",
                spill.writeback_bps() / 1e6,
                spill.readback_bps() / 1e6,
                refit.c[7]
            )
            .map_err(w)?;
            if let Some(path) = json {
                let mut samples = String::new();
                for (i, s) in profile.samples.iter().enumerate() {
                    if i > 0 {
                        samples.push(',');
                    }
                    samples.push_str(&format!(
                        "\n    {{\"kernel\": \"{}\", \"n\": {}, \"flops\": {}, \
                         \"seconds\": {:.9}, \"gflops\": {:.4}}}",
                        s.kernel,
                        s.n,
                        s.flops,
                        s.seconds,
                        s.gflops()
                    ));
                }
                let coeffs = refit
                    .c
                    .iter()
                    .map(|c| format!("{c:e}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let doc = format!(
                    "{{\n  \"schema\": \"cumulon-calibration-v1\",\n  \
                     \"instance\": \"{instance}\",\n  \
                     \"simd_level\": \"{}\",\n  \
                     \"kernel_threads\": {kernel_threads},\n  \
                     \"samples\": [{samples}\n  ],\n  \
                     \"implied_gflops_before\": {before:.4},\n  \
                     \"implied_gflops_after\": {after:.4},\n  \
                     \"spill_writeback_bps\": {:.0},\n  \
                     \"spill_readback_bps\": {:.0},\n  \
                     \"coefficients\": [{coeffs}],\n  \
                     \"sigma\": {}\n}}\n",
                    profile.simd_level,
                    spill.writeback_bps(),
                    spill.readback_bps(),
                    refit.sigma
                );
                std::fs::write(path, doc)
                    .map_err(|e| CoreError::Invariant(format!("cannot write {path}: {e}")))?;
                writeln!(out, "json   : {path}").map_err(w)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    // `InputSpec` parsing is unit-tested where it lives, in `cumulon-lang`.

    #[test]
    fn parse_plan_command() {
        let cmd = parse_args(&args(
            "plan s.cm --input A=100x100 --deadline 30 --max-nodes 8",
        ))
        .unwrap();
        match cmd {
            Command::Plan {
                script,
                inputs,
                constraint,
                max_nodes,
                spot,
                bid,
            } => {
                assert_eq!(script, "s.cm");
                assert_eq!(inputs.len(), 1);
                assert_eq!(constraint, Constraint::Deadline(1800.0));
                assert_eq!(max_nodes, 8);
                assert!(!spot);
                assert_eq!(bid, None);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_run_command() {
        let cmd = parse_args(&args(
            "run s.cm --input A=10x10 --instance m1.large --nodes 4 --slots 2 --real --threads 3 \
             --materialize-bytes",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                script: "s.cm".into(),
                inputs: vec![InputSpec::parse("A=10x10").unwrap()],
                instance: "m1.large".into(),
                nodes: 4,
                slots: 2,
                real: true,
                threads: 3,
                materialize_bytes: true,
                trace: None,
                spot: false,
                bid: None,
                elastic: false,
                kernel_threads: 1,
                memory_budget: 0,
                spill_dir: None,
                prefetch_depth: 0,
            }
        );
    }

    #[test]
    fn parse_spill_flags() {
        let cmd = parse_args(&args(
            "run s.cm --input A=10x10 --instance m1.large --nodes 2 \
             --memory-budget 1048576 --spill-dir /tmp/spill --prefetch-depth 8",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                memory_budget,
                spill_dir,
                prefetch_depth,
                ..
            } => {
                assert_eq!(memory_budget, 1_048_576);
                assert_eq!(spill_dir.as_deref(), Some("/tmp/spill"));
                assert_eq!(prefetch_depth, 8);
            }
            other => panic!("wrong command {other:?}"),
        }
        // --spill-dir or --prefetch-depth without a budget, spill flags
        // off `run`, and non-integer values all reject.
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --spill-dir /tmp/x"
        ))
        .is_err());
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --prefetch-depth 4"
        ))
        .is_err());
        assert!(parse_args(&args(
            "trace s.cm --input A=1x1 --instance m1.large --nodes 2 --memory-budget 1024"
        ))
        .is_err());
        assert!(parse_args(&args(
            "trace s.cm --input A=1x1 --instance m1.large --nodes 2 --prefetch-depth 4"
        ))
        .is_err());
        assert!(parse_args(&args("plan s.cm --input A=1x1 --memory-budget 1024")).is_err());
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --memory-budget lots"
        ))
        .is_err());
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 \
             --memory-budget 1024 --prefetch-depth deep"
        ))
        .is_err());
    }

    #[test]
    fn parse_spot_flags() {
        let cmd = parse_args(&args(
            "run s.cm --input A=10x10 --instance m1.large --nodes 4 --spot --bid 0.7 --elastic",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                spot, bid, elastic, ..
            } => {
                assert!(spot);
                assert_eq!(bid, Some(0.7));
                assert!(elastic);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&args(
            "plan s.cm --input A=10x10 --deadline 60 --spot --bid 0.5",
        ))
        .unwrap();
        match cmd {
            Command::Plan { spot, bid, .. } => {
                assert!(spot);
                assert_eq!(bid, Some(0.5));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --bid without --spot, spot under a budget, --elastic on plan,
        // spot flags on trace/explain, and non-positive bids all reject.
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --bid 0.5"
        ))
        .is_err());
        assert!(parse_args(&args("plan s.cm --input A=1x1 --budget 5 --spot")).is_err());
        assert!(parse_args(&args("plan s.cm --input A=1x1 --spot --elastic")).is_err());
        assert!(parse_args(&args(
            "trace s.cm --input A=1x1 --instance m1.large --nodes 2 --spot"
        ))
        .is_err());
        assert!(parse_args(&args("explain s.cm --input A=1x1 --elastic")).is_err());
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --spot --bid -0.2"
        ))
        .is_err());
        assert!(parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --elastic --trace t.json"
        ))
        .is_err());
    }

    #[test]
    fn parse_trace_flag_and_subcommand() {
        let cmd = parse_args(&args(
            "run s.cm --input A=10x10 --instance m1.large --nodes 2 --trace out.json",
        ))
        .unwrap();
        match cmd {
            Command::Run { trace, .. } => assert_eq!(trace.as_deref(), Some("out.json")),
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&args(
            "trace s.cm --input A=10x10 --instance m1.large --nodes 2 --slots 1 --trace t.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                script: "s.cm".into(),
                inputs: vec![InputSpec::parse("A=10x10").unwrap()],
                instance: "m1.large".into(),
                nodes: 2,
                slots: 1,
                real: false,
                threads: 0,
                out_json: Some("t.json".into()),
                kernel_threads: 1,
            }
        );
        assert!(parse_args(&args("trace s.cm --input A=1x1")).is_err());
    }

    #[test]
    fn parse_check_command() {
        assert_eq!(
            parse_args(&args("check")).unwrap(),
            Command::Check {
                quick: false,
                report: None
            }
        );
        assert_eq!(
            parse_args(&args("check --quick --report out.json")).unwrap(),
            Command::Check {
                quick: true,
                report: Some("out.json".into())
            }
        );
        assert!(parse_args(&args("check --report")).is_err());
        assert!(parse_args(&args("check --bogus")).is_err());
    }

    #[test]
    fn parse_calibrate_command() {
        assert_eq!(
            parse_args(&args("calibrate")).unwrap(),
            Command::Calibrate {
                instance: "m1.large".into(),
                quick: false,
                kernel_threads: 1,
                json: None,
            }
        );
        assert_eq!(
            parse_args(&args(
                "calibrate --instance c1.xlarge --quick --kernel-threads 0 --json cal.json"
            ))
            .unwrap(),
            Command::Calibrate {
                instance: "c1.xlarge".into(),
                quick: true,
                kernel_threads: 0,
                json: Some("cal.json".into()),
            }
        );
        assert!(parse_args(&args("calibrate --json")).is_err());
        assert!(parse_args(&args("calibrate --bogus")).is_err());
        // --kernel-threads is also a run/trace flag.
        match parse_args(&args(
            "run s.cm --input A=1x1 --instance m1.large --nodes 2 --kernel-threads 4",
        ))
        .unwrap()
        {
            Command::Run { kernel_threads, .. } => assert_eq!(kernel_threads, 4),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn calibrate_end_to_end() {
        let mut json_path = std::env::temp_dir();
        json_path.push(format!("cumulon_cli_cal_{}.json", std::process::id()));
        let mut out = Vec::new();
        execute(
            &Command::Calibrate {
                instance: "m1.large".into(),
                quick: true,
                kernel_threads: 1,
                json: Some(json_path.to_str().unwrap().to_string()),
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("gemm_packed"), "{text}");
        assert!(text.contains("implied"), "{text}");
        assert!(text.contains("readback"), "{text}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        let v = cumulon_trace::json::parse(&json).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("cumulon-calibration-v1")
        );
        assert!(v
            .get("implied_gflops_after")
            .and_then(|g| g.as_f64())
            .is_some_and(|g| g > 0.0));
        assert!(v
            .get("spill_readback_bps")
            .and_then(|g| g.as_f64())
            .is_some_and(|g| g > 0.0));
        std::fs::remove_file(json_path).ok();
        // Unknown instance rejects before any measurement.
        assert!(execute(
            &Command::Calibrate {
                instance: "bogus.type".into(),
                quick: true,
                kernel_threads: 1,
                json: None,
            },
            &mut Vec::new(),
        )
        .is_err());
    }

    #[test]
    fn check_end_to_end() {
        let mut json_path = std::env::temp_dir();
        json_path.push(format!("cumulon_cli_check_{}.json", std::process::id()));
        let mut out = Vec::new();
        execute(
            &Command::Check {
                quick: true,
                report: Some(json_path.to_str().unwrap().to_string()),
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("all invariants hold"), "{text}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        let v = cumulon_trace::json::parse(&json).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("cumulon-check-v1")
        );
        assert_eq!(v.get("passed").and_then(|p| p.as_bool()), Some(true));
        std::fs::remove_file(json_path).ok();
    }

    #[test]
    fn parse_serve_command() {
        assert_eq!(
            parse_args(&args("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7070".into(),
                queue_depth: 8,
                run_workers: 2,
                threads: 2,
            }
        );
        assert_eq!(
            parse_args(&args(
                "serve --addr 0.0.0.0:9000 --queue-depth 4 --run-workers 3 --threads 1"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                queue_depth: 4,
                run_workers: 3,
                threads: 1,
            }
        );
        assert!(parse_args(&args("serve --queue-depth 0")).is_err());
        assert!(parse_args(&args("serve --run-workers")).is_err());
        assert!(parse_args(&args("serve --bogus")).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args("plan")).is_err());
        assert!(parse_args(&args("plan s.cm")).is_err()); // no inputs
        assert!(parse_args(&args("run s.cm --input A=1x1")).is_err()); // no instance
        assert!(parse_args(&args("plan s.cm --input A=1x1 --deadline 5 --budget 2")).is_err());
        assert!(parse_args(&args("frobnicate s.cm --input A=1x1")).is_err());
        assert!(parse_args(&args("plan s.cm --input A=1x1 --bogus 3")).is_err());
    }

    fn write_script(content: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cumulon_cli_test_{}.cm", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    #[test]
    fn explain_and_run_end_to_end() {
        let path = write_script("G = A' * A;");
        let script = path.to_str().unwrap().to_string();

        let mut out = Vec::new();
        execute(
            &Command::Explain {
                script: script.clone(),
                inputs: vec![InputSpec::parse("A=40x20:10").unwrap()],
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("outputs: [\"G\"]"), "{text}");
        assert!(text.contains("physical plan"), "{text}");

        let mut out = Vec::new();
        execute(
            &Command::Run {
                script: script.clone(),
                inputs: vec![InputSpec::parse("A=40x20:10").unwrap()],
                instance: "m1.large".into(),
                nodes: 2,
                slots: 0,
                real: true,
                threads: 0,
                materialize_bytes: false,
                trace: None,
                spot: false,
                bid: None,
                elastic: false,
                kernel_threads: 1,
                memory_budget: 0,
                spill_dir: None,
                prefetch_depth: 0,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("output G: 20x20"), "{text}");

        std::fs::remove_file(path).ok();
    }

    /// `run --memory-budget` end to end with a budget far below the
    /// working set: the run spills, reports it, and produces the same
    /// output norm as the unbounded run above. With `--prefetch-depth`
    /// stacked on top, the output norm still may not move and the report
    /// gains the prefetch line.
    #[test]
    fn memory_budget_run_end_to_end() {
        let path = write_script("G = A' * A;");
        let script = path.to_str().unwrap().to_string();
        let run = |budget: u64, prefetch: usize| {
            let mut out = Vec::new();
            execute(
                &Command::Run {
                    script: script.clone(),
                    inputs: vec![InputSpec::parse("A=40x20:10").unwrap()],
                    instance: "m1.large".into(),
                    nodes: 2,
                    slots: 0,
                    real: true,
                    threads: 1,
                    materialize_bytes: false,
                    trace: None,
                    spot: false,
                    bid: None,
                    elastic: false,
                    kernel_threads: 1,
                    memory_budget: budget,
                    spill_dir: None,
                    prefetch_depth: prefetch,
                },
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let tight = run(2_048, 0);
        assert!(
            tight.contains("spill  : resident tile budget 2048 B"),
            "{tight}"
        );
        assert!(tight.contains("eviction(s)"), "{tight}");
        assert!(!tight.contains("prefetched"), "{tight}");
        let unbounded = run(0, 0);
        let norm = |t: &str| {
            t.lines()
                .find(|l| l.contains("output G"))
                .map(str::to_string)
                .unwrap()
        };
        assert_eq!(norm(&tight), norm(&unbounded), "spill changed the result");
        let prefetched = run(2_048, 4);
        assert!(prefetched.contains("tile(s) prefetched"), "{prefetched}");
        assert_eq!(
            norm(&prefetched),
            norm(&unbounded),
            "prefetch changed the result"
        );
        std::fs::remove_file(path).ok();
    }

    /// `run --spot --elastic` end to end: the synthetic market revokes the
    /// spot half of the fleet, the run survives, and the elastic pass
    /// refits the model and replaces the lost capacity.
    #[test]
    fn spot_elastic_run_end_to_end() {
        let path = write_script("G = A' * A;");
        let script = path.to_str().unwrap().to_string();
        let mut out = Vec::new();
        execute(
            &Command::Run {
                script,
                inputs: vec![InputSpec::parse("A=60x30:10").unwrap()],
                instance: "m1.large".into(),
                nodes: 4,
                slots: 2,
                real: true,
                threads: 1,
                materialize_bytes: false,
                trace: None,
                spot: true,
                bid: Some(0.3),
                elastic: true,
                kernel_threads: 1,
                memory_budget: 0,
                spill_dir: None,
                prefetch_depth: 0,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("spot   : 2 node(s) bid"), "{text}");
        assert!(text.contains("elastic: boundary 1"), "{text}");
        assert!(text.contains("output G: 30x30"), "{text}");
        std::fs::remove_file(path).ok();
    }

    /// `plan --spot` end to end: the bid × checkpoint-interval search
    /// reports a procurement choice plus the on-demand reference.
    #[test]
    fn spot_plan_end_to_end() {
        let path = write_script("C = A * B;");
        let script = path.to_str().unwrap().to_string();
        let mut out = Vec::new();
        execute(
            &Command::Plan {
                script,
                inputs: vec![
                    InputSpec::parse("A=8000x8000").unwrap(),
                    InputSpec::parse("B=8000x8000").unwrap(),
                ],
                constraint: Constraint::Deadline(7_200.0),
                max_nodes: 8,
                spot: true,
                bid: None,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("procure:"), "{text}");
        assert!(text.contains("on-demand reference:"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_subcommand_end_to_end() {
        let path = write_script("G = A' * A;");
        let script = path.to_str().unwrap().to_string();
        let mut json_path = std::env::temp_dir();
        json_path.push(format!("cumulon_cli_trace_{}.json", std::process::id()));

        let mut out = Vec::new();
        execute(
            &Command::Trace {
                script,
                inputs: vec![InputSpec::parse("A=40x20:10").unwrap()],
                instance: "m1.large".into(),
                nodes: 2,
                slots: 2,
                real: true,
                threads: 1,
                out_json: Some(json_path.to_str().unwrap().to_string()),
                kernel_threads: 1,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Critical path"), "{text}");
        assert!(text.contains("Slot utilization"), "{text}");
        assert!(text.contains("Estimate vs actual"), "{text}");

        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"traceEvents\""), "exported JSON malformed");
        std::fs::remove_file(json_path).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn plan_end_to_end() {
        let path = write_script("C = A * B;");
        let script = path.to_str().unwrap().to_string();
        let mut out = Vec::new();
        execute(
            &Command::Plan {
                script,
                inputs: vec![
                    InputSpec::parse("A=8000x8000").unwrap(),
                    InputSpec::parse("B=8000x8000").unwrap(),
                ],
                constraint: Constraint::Deadline(3_600.0),
                max_nodes: 8,
                spot: false,
                bid: None,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("chosen :"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_input_reported() {
        let path = write_script("C = A * B;");
        let script = path.to_str().unwrap().to_string();
        let err = execute(
            &Command::Explain {
                script,
                inputs: vec![InputSpec::parse("A=10x10").unwrap()],
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("'B'"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
