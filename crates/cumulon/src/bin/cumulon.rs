//! The `cumulon` CLI entry point; all logic lives in `cumulon::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cumulon::cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = cumulon::cli::execute(&cmd, &mut std::io::stdout()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
