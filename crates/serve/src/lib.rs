//! # cumulon-serve
//!
//! Cumulon's optimization-as-a-service layer: a long-running, multi-tenant
//! daemon answering concurrent *what-if* queries (`plan`, `optimize`) and
//! executing full simulated runs (`run`) over a newline-delimited JSON
//! protocol ([`protocol::SCHEMA`] = `cumulon-serve-v1`). This is the
//! product shape the paper's "millions of users hammering what-if
//! queries" motivation implies — the CLI's one-shot pipelines, made
//! resident and admission-controlled.
//!
//! Layers, inside out:
//!
//! * [`engine`] — the per-action execution pipelines (compile →
//!   provision → estimate/optimize/execute), mirrored from the CLI;
//! * [`quota`] — per-tenant token buckets with exact `retry_after_s`;
//! * [`queue`] — the bounded, priority-ordered run queue (backpressure
//!   rejects rather than blocks);
//! * [`service`] — admission, the fast lane, the worker pool and the
//!   job/receipt table, behind one [`Service::handle`] string→string
//!   entry point;
//! * [`server`]/[`client`] — the TCP shell and a blocking client.
//!
//! # Determinism under concurrency
//!
//! Every admitted `run` executes with lookahead speculation on the
//! process-wide shared worker pool
//! ([`cumulon_cluster::shared_spec_pool`]), scheduled by tenant priority.
//! Results are bitwise-identical to a serial, single-client run of the
//! same program: speculation is a cache the canonical discrete-event
//! replay validates read-for-read, so pool contention between tenants
//! shifts *when* lookahead work happens but never what a run computes.
//! Each response carries the run's
//! [`fingerprint`](cumulon_cluster::RunReport::fingerprint) so clients
//! can audit this (`cumulon check` pins it as the `serve-isolation`
//! invariant, and a proptest races N clients against a serial replay).

#![deny(missing_docs)]

pub mod client;
pub mod engine;
pub mod protocol;
pub mod queue;
pub mod quota;
pub mod server;
pub mod service;

pub use client::Client;
pub use protocol::{Action, ErrorCode, Reply, Request, SCHEMA};
pub use quota::{QuotaConfig, TokenBucket};
pub use server::Server;
pub use service::{JobRecord, JobState, Service, ServiceConfig};
