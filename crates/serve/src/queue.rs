//! The admission-controlled run queue: bounded, priority-ordered,
//! drainable.
//!
//! `run` requests that pass quota go here; worker threads pop them.
//! Admission is all-or-nothing at push time — a full queue rejects
//! immediately (the service turns that into `queue-full` +
//! `retry_after_s`) rather than blocking the connection thread, which is
//! what keeps the estimate-only fast lane fast. Within the queue, higher
//! priority pops first and ties break FIFO by sequence number, matching
//! the lane discipline of the shared speculation pool
//! ([`cumulon_cluster::SpecPool`]).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState<T> {
    items: VecDeque<(u8, u64, T)>,
    next_seq: u64,
    closed: bool,
}

/// A bounded, priority-ordered, multi-producer multi-consumer queue.
pub struct JobQueue<T> {
    depth: usize,
    state: Mutex<QueueState<T>>,
    cvar: Condvar,
}

impl<T> JobQueue<T> {
    /// An empty queue admitting at most `depth` items at once.
    pub fn new(depth: usize) -> JobQueue<T> {
        JobQueue {
            depth: depth.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                next_seq: 0,
                closed: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Items currently queued (racy by nature; for backpressure math and
    /// reporting only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (same caveat as [`len`]).
    ///
    /// [`len`]: JobQueue::len
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tries to admit `item` at `priority`. Returns the queue length
    /// after insertion, or gives the item back (`Err`) when the queue is
    /// full or closed — never blocks.
    pub fn push(&self, priority: u8, item: T) -> Result<usize, T> {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.items.len() >= self.depth {
            return Err(item);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.items.push_back((priority, seq, item));
        let len = st.items.len();
        drop(st);
        self.cvar.notify_one();
        Ok(len)
    }

    /// Pops the highest-priority item (FIFO within a priority), blocking
    /// while the queue is open and empty. Returns `None` once the queue
    /// is closed *and* drained — the worker-shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(best) = st
                .items
                .iter()
                .enumerate()
                .max_by_key(|(_, (p, seq, _))| (*p, std::cmp::Reverse(*seq)))
                .map(|(i, _)| i)
            {
                return st.items.remove(best).map(|(_, _, item)| item);
            }
            if st.closed {
                return None;
            }
            st = self.cvar.wait(st).unwrap();
        }
    }

    /// Closes the queue: future pushes reject, queued items still drain
    /// through `pop`, and blocked poppers wake to observe the close.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_rejects_when_full() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(0, "a"), Ok(1));
        assert_eq!(q.push(0, "b"), Ok(2));
        assert_eq!(q.push(0, "c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.push(0, "c"), Ok(2));
    }

    #[test]
    fn priority_then_fifo_order() {
        let q = JobQueue::new(8);
        q.push(0, "low-1").unwrap();
        q.push(5, "hi-1").unwrap();
        q.push(0, "low-2").unwrap();
        q.push(5, "hi-2").unwrap();
        assert_eq!(q.pop(), Some("hi-1"));
        assert_eq!(q.pop(), Some("hi-2"));
        assert_eq!(q.pop(), Some("low-1"));
        assert_eq!(q.pop(), Some("low-2"));
    }

    #[test]
    fn close_drains_then_signals_shutdown() {
        let q = JobQueue::new(4);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        q.close();
        assert_eq!(q.push(0, 3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
