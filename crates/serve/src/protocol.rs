//! The `cumulon-serve-v1` wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response per line, in order. Requests and
//! responses are flat JSON objects; parsing reuses the dependency-free
//! [`cumulon_trace::json`] parser and emission is hand-ordered so a given
//! request always produces byte-identical response text (golden-file
//! tested). The full field tables live in README.md ("Protocol
//! reference").

use cumulon_lang::InputSpec;
use cumulon_trace::json::{escape, parse, JsonValue};

/// Schema tag carried by every request and response.
pub const SCHEMA: &str = "cumulon-serve-v1";

/// What a request asks the service to do.
///
/// `Plan` and `Optimize` are estimate-only — served synchronously on the
/// connection thread (the fast lane). `Run` executes the program and goes
/// through the admission-controlled job queue; `CheckStatus` polls an
/// asynchronous run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Estimate makespan/cost of the script on a *given* cluster shape.
    Plan,
    /// Search deployments for the cheapest plan under a constraint.
    Optimize,
    /// Execute the script on the simulated cluster; returns the run's
    /// [`fingerprint`](cumulon_cluster::RunReport::fingerprint).
    Run,
    /// Poll the state of an asynchronous `run` job.
    CheckStatus,
}

impl Action {
    /// The wire name of the action.
    pub fn as_str(self) -> &'static str {
        match self {
            Action::Plan => "plan",
            Action::Optimize => "optimize",
            Action::Run => "run",
            Action::CheckStatus => "check-status",
        }
    }

    fn from_str(s: &str) -> Option<Action> {
        match s {
            "plan" => Some(Action::Plan),
            "optimize" => Some(Action::Optimize),
            "run" => Some(Action::Run),
            "check-status" => Some(Action::CheckStatus),
            _ => None,
        }
    }
}

/// Machine-readable error code in a failed response (`"error"` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid `cumulon-serve-v1` JSON, or a field
    /// failed validation (bad script, bad input spec, unknown instance).
    BadRequest,
    /// The run queue is at capacity; retry after `retry_after_s`.
    QueueFull,
    /// The tenant's token bucket is empty; retry after `retry_after_s`.
    QuotaExhausted,
    /// `check-status` named a job id the service has no record of.
    UnknownJob,
    /// The service is draining for shutdown and admits no new work.
    ShuttingDown,
    /// The program itself failed to compile, provision or execute.
    Internal,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::QuotaExhausted => "quota-exhausted",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed, validated `cumulon-serve-v1` request.
///
/// ```
/// use cumulon_serve::protocol::{Action, Request};
/// let req = Request::parse(
///     r#"{"schema":"cumulon-serve-v1","id":"r1","tenant":"alice",
///         "action":"run","script":"G = A' * A;","inputs":["A=40x20:10"],
///         "instance":"m1.large","nodes":2}"#,
/// )
/// .unwrap();
/// assert_eq!(req.action, Action::Run);
/// assert_eq!(req.inputs[0].name, "A");
/// ```
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen request id, echoed in the response and threaded
    /// through the run's trace ([`cumulon_trace::Trace::set_request_id`]).
    pub id: String,
    /// Tenant the request bills against (quota + priority lane).
    pub tenant: String,
    /// What to do.
    pub action: Action,
    /// DSL source text (required for plan/optimize/run).
    pub script: String,
    /// Generator-backed inputs, `NAME=RxC[@D][:T]` each.
    pub inputs: Vec<InputSpec>,
    /// Instance type for plan/run (default `m1.large`).
    pub instance: String,
    /// Node count for plan/run (default 4).
    pub nodes: u32,
    /// Slots per node (0 = one per core).
    pub slots: u32,
    /// Optimize: deadline constraint, seconds.
    pub deadline_s: Option<f64>,
    /// Optimize: budget constraint, dollars.
    pub budget_dollars: Option<f64>,
    /// Optimize: largest cluster to consider (default 64).
    pub max_nodes: u32,
    /// Priority lane, 0-255 (higher preempts lower in the run queue and
    /// on the shared speculation pool).
    pub priority: u8,
    /// Run: block until the run completes (default). `false` returns a
    /// job id immediately; poll it with `check-status`.
    pub wait: bool,
    /// CheckStatus: the job id to poll.
    pub job: Option<String>,
    /// Run: make the upper half of the fleet spot capacity on a synthetic
    /// price trace (revocations + recovery), like `cumulon run --spot`.
    pub spot: bool,
    /// Run: spot bid as a fraction of the list price (default 0.5).
    pub bid: Option<f64>,
    /// Run: re-provision after the run like `cumulon run --elastic`.
    pub elastic: bool,
    /// Run: host-memory budget in bytes for resident tiles (0 =
    /// unbounded), like `cumulon run --memory-budget`.
    pub memory_budget: u64,
}

fn str_field(v: &JsonValue, key: &str) -> Option<String> {
    v.get(key).and_then(|x| x.as_str()).map(str::to_string)
}

fn num_field(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

impl Request {
    /// Parses and validates one request line. Errors are human-readable
    /// messages the service wraps in a `bad-request` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        match str_field(&v, "schema") {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported schema '{s}' (want {SCHEMA})")),
            None => return Err(format!("missing 'schema' (want {SCHEMA})")),
        }
        let id = str_field(&v, "id").ok_or("missing 'id'")?;
        let tenant = str_field(&v, "tenant").ok_or("missing 'tenant'")?;
        let action_name = str_field(&v, "action").ok_or("missing 'action'")?;
        let action = Action::from_str(&action_name)
            .ok_or_else(|| format!("unknown action '{action_name}'"))?;
        let script = str_field(&v, "script").unwrap_or_default();
        let mut inputs = Vec::new();
        if let Some(arr) = v.get("inputs").and_then(|x| x.as_arr()) {
            for item in arr {
                let spec = item.as_str().ok_or("'inputs' entries must be strings")?;
                inputs.push(InputSpec::parse(spec).map_err(|e| e.to_string())?);
            }
        }
        if action != Action::CheckStatus {
            if script.is_empty() {
                return Err(format!("action '{action_name}' needs 'script'"));
            }
            if inputs.is_empty() {
                return Err(format!("action '{action_name}' needs 'inputs'"));
            }
        }
        let uint = |key: &str, default: f64| -> Result<f64, String> {
            match num_field(&v, key) {
                None => Ok(default),
                Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 => Ok(n),
                Some(n) => Err(format!("'{key}' must be a non-negative integer, got {n}")),
            }
        };
        let nodes = uint("nodes", 4.0)? as u32;
        let slots = uint("slots", 0.0)? as u32;
        let max_nodes = uint("max_nodes", 64.0)? as u32;
        let priority = uint("priority", 0.0)?;
        if priority > 255.0 {
            return Err("'priority' must be 0-255".into());
        }
        let memory_budget = uint("memory_budget", 0.0)? as u64;
        if nodes == 0 {
            return Err("'nodes' must be positive".into());
        }
        let bid = num_field(&v, "bid");
        if let Some(b) = bid {
            if !(b > 0.0 && b.is_finite()) {
                return Err("'bid' must be a positive fraction of the list price".into());
            }
        }
        let deadline_s = num_field(&v, "deadline_s");
        let budget_dollars = num_field(&v, "budget_dollars");
        if deadline_s.is_some() && budget_dollars.is_some() {
            return Err("pick one of 'deadline_s' and 'budget_dollars'".into());
        }
        Ok(Request {
            id,
            tenant,
            action,
            script,
            inputs,
            instance: str_field(&v, "instance").unwrap_or_else(|| "m1.large".into()),
            nodes,
            slots,
            deadline_s,
            budget_dollars,
            max_nodes,
            priority: priority as u8,
            wait: v.get("wait").and_then(|x| x.as_bool()).unwrap_or(true),
            job: str_field(&v, "job"),
            spot: v.get("spot").and_then(|x| x.as_bool()).unwrap_or(false),
            bid,
            elastic: v.get("elastic").and_then(|x| x.as_bool()).unwrap_or(false),
            memory_budget,
        })
    }
}

/// An ordered JSON object writer for responses: fields are emitted in
/// insertion order, so a given logical response always serializes to the
/// same bytes.
///
/// ```
/// use cumulon_serve::protocol::Reply;
/// let line = Reply::ok("r1", "plan").num("estimate_s", 12.5).finish();
/// assert!(line.starts_with(r#"{"schema":"cumulon-serve-v1","id":"r1","ok":true"#));
/// assert!(line.ends_with('\n'));
/// ```
#[derive(Debug)]
pub struct Reply {
    buf: String,
}

impl Reply {
    fn new(id: &str, ok: bool, action: &str) -> Reply {
        Reply {
            buf: format!(
                "{{\"schema\":\"{SCHEMA}\",\"id\":\"{}\",\"ok\":{ok},\"action\":\"{}\"",
                escape(id),
                escape(action)
            ),
        }
    }

    /// Starts a success response for request `id`.
    pub fn ok(id: &str, action: &str) -> Reply {
        Reply::new(id, true, action)
    }

    /// Builds a complete error response line.
    pub fn err(
        id: &str,
        action: &str,
        code: ErrorCode,
        message: &str,
        retry_after_s: Option<f64>,
    ) -> String {
        let mut r = Reply::new(id, false, action)
            .str("error", code.as_str())
            .str("message", message);
        if let Some(s) = retry_after_s {
            r = r.num("retry_after_s", s);
        }
        r.finish()
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Reply {
        self.buf
            .push_str(&format!(",\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Appends a numeric field (non-finite values become 0, which no
    /// valid run produces).
    pub fn num(mut self, key: &str, value: f64) -> Reply {
        let value = if value.is_finite() { value } else { 0.0 };
        self.buf.push_str(&format!(",\"{}\":{value}", escape(key)));
        self
    }

    /// Appends an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Reply {
        self.buf.push_str(&format!(",\"{}\":{value}", escape(key)));
        self
    }

    /// Closes the object and appends the protocol's line terminator.
    pub fn finish(mut self) -> String {
        self.buf.push_str("}\n");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_run_request() {
        let req = Request::parse(
            r#"{"schema":"cumulon-serve-v1","id":"r1","tenant":"t","action":"run",
                "script":"G = A' * A;","inputs":["A=40x20:10"]}"#,
        )
        .unwrap();
        assert_eq!(req.action, Action::Run);
        assert_eq!(req.instance, "m1.large");
        assert_eq!(req.nodes, 4);
        assert!(req.wait);
        assert_eq!(req.priority, 0);
    }

    #[test]
    fn rejects_bad_requests() {
        for (line, needle) in [
            ("{", "malformed"),
            (r#"{"id":"x"}"#, "schema"),
            (
                r#"{"schema":"cumulon-serve-v0","id":"x","tenant":"t","action":"run"}"#,
                "unsupported schema",
            ),
            (
                r#"{"schema":"cumulon-serve-v1","tenant":"t","action":"run"}"#,
                "missing 'id'",
            ),
            (
                r#"{"schema":"cumulon-serve-v1","id":"x","tenant":"t","action":"frob"}"#,
                "unknown action",
            ),
            (
                r#"{"schema":"cumulon-serve-v1","id":"x","tenant":"t","action":"run"}"#,
                "'script'",
            ),
            (
                r#"{"schema":"cumulon-serve-v1","id":"x","tenant":"t","action":"run",
                    "script":"G=A;","inputs":["A=0x1"]}"#,
                "positive",
            ),
            (
                r#"{"schema":"cumulon-serve-v1","id":"x","tenant":"t","action":"run",
                    "script":"G=A;","inputs":["A=1x1"],"priority":900}"#,
                "0-255",
            ),
            (
                r#"{"schema":"cumulon-serve-v1","id":"x","tenant":"t","action":"optimize",
                    "script":"G=A;","inputs":["A=1x1"],"deadline_s":60,"budget_dollars":5}"#,
                "pick one",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn reply_is_deterministic_and_parseable() {
        let line = Reply::ok("r1", "run")
            .str("job", "job-1")
            .str("fingerprint", "mk0\nline2")
            .num("makespan_s", 1.5)
            .int("spans", 7)
            .finish();
        assert!(line.ends_with('\n'));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("fingerprint").unwrap().as_str(),
            Some("mk0\nline2"),
            "newlines survive the round trip"
        );
        assert_eq!(v.get("spans").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn error_reply_carries_code_and_retry() {
        let line = Reply::err("r9", "run", ErrorCode::QueueFull, "queue at 8/8", Some(2.5));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("queue-full"));
        assert_eq!(v.get("retry_after_s").unwrap().as_f64(), Some(2.5));
    }
}
