//! The TCP shell: newline-delimited JSON over a thread-per-connection
//! listener. All protocol logic lives in [`Service::handle`]; this module
//! only frames lines and manages connection threads.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use cumulon_core::error::CoreError;
use cumulon_core::Result;

use crate::service::{Service, ServiceConfig};

/// Accepted connections: a dup of each stream (so `stop` can half-close
/// the socket from outside) plus its handler thread.
type ConnList = Arc<Mutex<Vec<(TcpStream, std::thread::JoinHandle<()>)>>>;

/// A listening `cumulon serve` daemon.
///
/// Bind to port 0 to let the OS pick (tests do this), then hand clients
/// [`Server::addr`]. Each connection gets its own thread; a connection
/// may pipeline any number of request lines and receives responses in
/// order. [`Server::stop`] drains in-flight runs before returning, and
/// does not wait for idle clients: it half-closes every connection's
/// read side, so a client that holds its socket open cannot wedge the
/// shutdown (in-flight responses still flush on the write side).
pub struct Server {
    service: Arc<ServiceHolder>,
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    conns: ConnList,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Connections share the service, but `stop` must drain and retire it
/// exactly once; this holder lets `stop` take it out from under them
/// after every handler has quiesced. Handlers take the read side so
/// connections dispatch concurrently — [`Service::handle`] is internally
/// synchronized, and a fast-lane `plan`/`optimize` on one connection
/// must never serialize behind another connection's blocking `run`.
struct ServiceHolder {
    service: std::sync::RwLock<Option<Service>>,
}

impl ServiceHolder {
    fn handle(&self, line: &str) -> Option<String> {
        let guard = self.service.read().unwrap();
        guard.as_ref().map(|s| s.handle(line))
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn start(addr: &str, config: ServiceConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| CoreError::Invariant(format!("cannot bind {addr}: {e}")))?;
        let bound = listener
            .local_addr()
            .map_err(|e| CoreError::Invariant(format!("no local addr: {e}")))?;
        let service = Arc::new(ServiceHolder {
            service: std::sync::RwLock::new(Some(Service::start(config))),
        });
        let stopping = Arc::new(AtomicBool::new(false));
        let conns: ConnList = Arc::new(Mutex::new(Vec::new()));
        let accept_service = Arc::clone(&service);
        let accept_stop = Arc::clone(&stopping);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let Ok(dup) = stream.try_clone() else {
                    continue;
                };
                let service = Arc::clone(&accept_service);
                let handler = std::thread::spawn(move || serve_connection(stream, &service));
                accept_conns.lock().unwrap().push((dup, handler));
            }
        });
        Ok(Server {
            service,
            addr: bound,
            stopping,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight runs, and joins every thread.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept loop with a no-op connection, and join
        // it first — after that no new handler can appear in `conns`.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Half-close every connection's read side. A handler idle in its
        // read wakes with EOF and exits; one mid-request finishes, flushes
        // its response over the still-open write side, then sees the EOF.
        // Without this, a client that keeps its socket open would wedge
        // the handler joins below.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (stream, _) in &conns {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handler) in conns {
            let _ = handler.join();
        }
        if let Some(mut service) = self.service.service.write().unwrap().take() {
            service.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_connection(stream: TcpStream, service: &ServiceHolder) {
    let Ok(peer_write) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(peer_write);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // A `None` here means the server is mid-stop; drop the
        // connection rather than answer from a dead service.
        let Some(response) = service.handle(&line) else {
            break;
        };
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}
