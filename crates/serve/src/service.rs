//! The in-process service: admission control, quotas, the job table and
//! the run-worker pool, behind a single [`Service::handle`] entry point.
//!
//! [`Service::handle`] is the whole protocol — the TCP server
//! ([`crate::server`]) is a thin line-framing shell around it, and tests
//! drive the service in-process through the same method, so wire behavior
//! and tested behavior cannot drift.
//!
//! Request lifecycle (documented in DESIGN.md, "Service layer"):
//! accept → admit (schema, quota) → fast lane (`plan`/`optimize`,
//! executed synchronously on the calling thread) or queue (`run`,
//! bounded + priority-ordered) → execute (worker pool, shared
//! speculation pool) → audit (request-id-tagged trace, fingerprint in
//! the response, receipt retained in the job table).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use cumulon_cluster::shared_spec_pool;

use crate::engine;
use crate::protocol::{Action, ErrorCode, Reply, Request};
use crate::queue::JobQueue;
use crate::quota::{QuotaConfig, TokenBucket};

/// Tuning knobs for a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Maximum queued (not yet executing) `run` jobs before admission
    /// rejects with `queue-full`.
    pub queue_depth: usize,
    /// Worker threads executing queued runs.
    pub run_workers: usize,
    /// Scheduler threads per run. Every run uses the process-wide shared
    /// speculation pool ([`shared_spec_pool`]), sized to this on first
    /// use, so concurrent runs compete for the same workers under their
    /// priority lanes instead of oversubscribing the host.
    pub threads: usize,
    /// Per-tenant token-bucket policy.
    pub quota: QuotaConfig,
    /// Nominal seconds one queued run takes — seeds the observed-run-time
    /// EWMA that scales `retry_after_s` on `queue-full` rejections. Once
    /// runs complete, the hint tracks what runs *actually* take on this
    /// host, not this configured guess.
    pub nominal_run_s: f64,
}

/// EWMA smoothing factor for observed run wall times: new observations
/// carry 30% weight, so the `retry_after_s` hint adapts within a few runs
/// without one outlier whipsawing it.
const RUN_WALL_EWMA_ALPHA: f64 = 0.3;

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 8,
            run_workers: 2,
            threads: 2,
            quota: QuotaConfig::default(),
            nominal_run_s: 0.5,
        }
    }
}

/// Lifecycle state of a `run` job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; fingerprint and receipt retained.
    Done,
    /// Failed; message retained.
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// The retained record of one `run` job — the audit trail `check-status`
/// reads. Never dropped while the service lives, so receipts survive
/// graceful shutdown.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Current lifecycle state.
    pub state: JobState,
    /// Tenant that submitted the run.
    pub tenant: String,
    /// Request id the run executed under (tagged into its trace).
    pub request_id: String,
    /// Run fingerprint, set when `Done`.
    pub fingerprint: Option<String>,
    /// Simulated makespan, set when `Done`.
    pub makespan_s: f64,
    /// Dollar cost, set when `Done`.
    pub cost_dollars: f64,
    /// One-line report summary, set when `Done`.
    pub summary: String,
    /// Trace spans recorded, set when `Done`.
    pub spans: u64,
    /// Error message, set when `Failed`.
    pub error: String,
}

struct QueuedRun {
    job_id: String,
    request: Request,
}

struct ServiceInner {
    config: ServiceConfig,
    queue: JobQueue<QueuedRun>,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    jobs: Mutex<HashMap<String, JobRecord>>,
    jobs_cv: Condvar,
    next_job: AtomicU64,
    draining: AtomicBool,
    started: Instant,
    /// EWMA of completed-run wall seconds, seeded from
    /// [`ServiceConfig::nominal_run_s`]. Drives the `queue-full`
    /// `retry_after_s` hint: a service whose runs take 10x the nominal
    /// knob must not tell rejected clients to come back 10x too soon.
    run_wall_ewma_s: Mutex<f64>,
}

impl ServiceInner {
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Charges `cost` against the tenant's bucket; `Err(retry_after_s)`
    /// throttles.
    fn admit_quota(&self, tenant: &str, cost: f64) -> Result<(), f64> {
        let now = self.now_s();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(tenant.to_string()).or_insert_with(|| {
            TokenBucket::new(self.config.quota.capacity, self.config.quota.refill_per_s)
        });
        bucket.try_take(cost, now)
    }

    fn update_job(&self, job_id: &str, f: impl FnOnce(&mut JobRecord)) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(rec) = jobs.get_mut(job_id) {
            f(rec);
        }
        drop(jobs);
        self.jobs_cv.notify_all();
    }

    /// Folds one completed run's wall time into the EWMA.
    fn record_run_wall_s(&self, wall_s: f64) {
        let mut ewma = self.run_wall_ewma_s.lock().unwrap();
        *ewma = (1.0 - RUN_WALL_EWMA_ALPHA) * *ewma + RUN_WALL_EWMA_ALPHA * wall_s;
    }

    /// Backpressure hint for a `queue-full` rejection: how long until a
    /// worker likely frees a slot, assuming observed run time and a full
    /// pipeline.
    fn retry_after_hint(&self) -> f64 {
        let observed = *self.run_wall_ewma_s.lock().unwrap();
        observed * (1.0 + self.queue.depth() as f64 / self.config.run_workers as f64)
    }

    /// Executes one queued run on a worker thread and books the outcome.
    fn execute(&self, run: QueuedRun) {
        self.update_job(&run.job_id, |r| r.state = JobState::Running);
        let started = Instant::now();
        let result = engine::run(&run.request, self.config.threads, true);
        // Failed runs held a worker just as long as successful ones, so
        // both feed the backpressure estimate. Recorded before the
        // outcome is booked: a `wait`ing client that sees `Done` must
        // also see the hint its run produced.
        self.record_run_wall_s(started.elapsed().as_secs_f64());
        match result {
            Ok(outcome) => self.update_job(&run.job_id, |r| {
                r.state = JobState::Done;
                r.fingerprint = Some(outcome.report.fingerprint());
                r.makespan_s = outcome.report.makespan_s;
                r.cost_dollars = outcome.report.cost_dollars;
                r.summary = outcome.report.summary();
                r.spans = outcome.spans as u64;
            }),
            Err(e) => self.update_job(&run.job_id, |r| {
                r.state = JobState::Failed;
                r.error = e.to_string();
            }),
        }
    }
}

/// A running optimization service (the engine behind `cumulon serve`).
///
/// Start one, feed it protocol lines, shut it down:
///
/// ```
/// use cumulon_serve::{Service, ServiceConfig};
/// let mut svc = Service::start(ServiceConfig { run_workers: 1, ..Default::default() });
/// let response = svc.handle(
///     r#"{"schema":"cumulon-serve-v1","id":"r1","tenant":"alice","action":"plan",
///         "script":"G = A' * A;","inputs":["A=2000x1000"],"nodes":4}"#,
/// );
/// assert!(response.contains("\"ok\":true"), "{response}");
/// svc.shutdown();
/// ```
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the service: spawns `run_workers` executors and pins the
    /// process-wide speculation pool to `config.threads` workers.
    pub fn start(config: ServiceConfig) -> Service {
        // Create (or adopt) the shared pool up front so its size is set
        // by service config, not by whichever run happens first.
        let _ = shared_spec_pool(config.threads.max(1));
        let inner = Arc::new(ServiceInner {
            config,
            queue: JobQueue::new(config.queue_depth),
            buckets: Mutex::new(HashMap::new()),
            jobs: Mutex::new(HashMap::new()),
            jobs_cv: Condvar::new(),
            next_job: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            run_wall_ewma_s: Mutex::new(config.nominal_run_s),
        });
        let workers = (0..config.run_workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    while let Some(run) = inner.queue.pop() {
                        inner.execute(run);
                    }
                })
            })
            .collect();
        Service { inner, workers }
    }

    /// Handles one request line, returning the full response line
    /// (newline-terminated). Never panics on bad input — malformed lines
    /// produce `bad-request` responses.
    pub fn handle(&self, line: &str) -> String {
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err(msg) => {
                // Echo the id if one survived parsing, so clients can
                // correlate even malformed-request rejections.
                let id = cumulon_trace::json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(|x| x.as_str()).map(str::to_string))
                    .unwrap_or_default();
                return Reply::err(&id, "", ErrorCode::BadRequest, &msg, None);
            }
        };
        if self.inner.draining.load(Ordering::SeqCst) && req.action != Action::CheckStatus {
            return Reply::err(
                &req.id,
                req.action.as_str(),
                ErrorCode::ShuttingDown,
                "service is draining; no new work admitted",
                None,
            );
        }
        let quota_cost = match req.action {
            Action::Run => self.inner.config.quota.run_cost,
            _ => self.inner.config.quota.cheap_cost,
        };
        if let Err(retry_after) = self.inner.admit_quota(&req.tenant, quota_cost) {
            return Reply::err(
                &req.id,
                req.action.as_str(),
                ErrorCode::QuotaExhausted,
                &format!("tenant '{}' is out of quota", req.tenant),
                Some(retry_after),
            );
        }
        match req.action {
            // The fast lane: estimate-only work runs synchronously on
            // the connection thread and never queues behind runs.
            Action::Plan => match engine::plan(&req) {
                Ok(est) => Reply::ok(&req.id, "plan")
                    .str("instance", &req.instance)
                    .int("nodes", req.nodes as u64)
                    .num("estimate_s", est.makespan_s)
                    .num("est_cost_dollars", est.cost_dollars)
                    .int("plan_jobs", est.jobs as u64)
                    .finish(),
                Err(e) => Reply::err(&req.id, "plan", ErrorCode::Internal, &e.to_string(), None),
            },
            Action::Optimize => match engine::optimize(&req) {
                Ok(best) => Reply::ok(&req.id, "optimize")
                    .str("instance", &best.instance)
                    .int("nodes", best.nodes as u64)
                    .int("slots", best.slots as u64)
                    .num("estimate_s", best.est_makespan_s)
                    .num("est_cost_dollars", best.est_cost_dollars)
                    .str("summary", &best.summary)
                    .finish(),
                Err(e) => Reply::err(
                    &req.id,
                    "optimize",
                    ErrorCode::Internal,
                    &e.to_string(),
                    None,
                ),
            },
            Action::Run => self.handle_run(req),
            Action::CheckStatus => self.handle_status(&req),
        }
    }

    fn handle_run(&self, req: Request) -> String {
        let job_id = format!(
            "job-{}",
            self.inner.next_job.fetch_add(1, Ordering::Relaxed)
        );
        {
            let mut jobs = self.inner.jobs.lock().unwrap();
            jobs.insert(
                job_id.clone(),
                JobRecord {
                    state: JobState::Queued,
                    tenant: req.tenant.clone(),
                    request_id: req.id.clone(),
                    fingerprint: None,
                    makespan_s: 0.0,
                    cost_dollars: 0.0,
                    summary: String::new(),
                    spans: 0,
                    error: String::new(),
                },
            );
        }
        let id = req.id.clone();
        let wait = req.wait;
        let priority = req.priority;
        let queued = QueuedRun {
            job_id: job_id.clone(),
            request: req,
        };
        if self.inner.queue.push(priority, queued).is_err() {
            self.inner.jobs.lock().unwrap().remove(&job_id);
            let retry = self.inner.retry_after_hint();
            return Reply::err(
                &id,
                "run",
                ErrorCode::QueueFull,
                &format!("run queue is at capacity ({})", self.inner.queue.depth()),
                Some(retry),
            );
        }
        if !wait {
            return Reply::ok(&id, "run")
                .str("job", &job_id)
                .str("state", JobState::Queued.as_str())
                .finish();
        }
        // Synchronous run: wait for the worker to finish this job. The
        // wait sits on the connection thread, so it holds no service
        // locks while the run executes.
        let mut jobs = self.inner.jobs.lock().unwrap();
        loop {
            match jobs.get(&job_id) {
                Some(rec) if rec.state == JobState::Done || rec.state == JobState::Failed => {
                    let rec = rec.clone();
                    drop(jobs);
                    return render_finished(&id, &job_id, &rec);
                }
                Some(_) => jobs = self.inner.jobs_cv.wait(jobs).unwrap(),
                None => {
                    drop(jobs);
                    return Reply::err(
                        &id,
                        "run",
                        ErrorCode::Internal,
                        "job record vanished mid-run",
                        None,
                    );
                }
            }
        }
    }

    fn handle_status(&self, req: &Request) -> String {
        let Some(job_id) = req.job.as_deref() else {
            return Reply::err(
                &req.id,
                "check-status",
                ErrorCode::BadRequest,
                "check-status needs 'job'",
                None,
            );
        };
        let jobs = self.inner.jobs.lock().unwrap();
        match jobs.get(job_id) {
            None => Reply::err(
                &req.id,
                "check-status",
                ErrorCode::UnknownJob,
                &format!("no job '{job_id}'"),
                None,
            ),
            Some(rec) => {
                let rec = rec.clone();
                drop(jobs);
                match rec.state {
                    JobState::Done | JobState::Failed => render_finished(&req.id, job_id, &rec),
                    state => Reply::ok(&req.id, "check-status")
                        .str("job", job_id)
                        .str("state", state.as_str())
                        .finish(),
                }
            }
        }
    }

    /// Jobs table snapshot (for tests and reporting).
    pub fn job(&self, job_id: &str) -> Option<JobRecord> {
        self.inner.jobs.lock().unwrap().get(job_id).cloned()
    }

    /// Graceful shutdown: stop admitting, drain every queued and
    /// in-flight run to completion, join the workers. Receipts for all
    /// admitted jobs remain in the table (verified by the shutdown-drain
    /// test) — no admitted run is ever dropped, and [`Service::job`] /
    /// `check-status` keep answering after the drain.
    pub fn shutdown(&mut self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // A dropped (not shut down) service still drains rather than
        // detaching threads.
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn render_finished(id: &str, job_id: &str, rec: &JobRecord) -> String {
    match rec.state {
        JobState::Done => Reply::ok(id, "run")
            .str("job", job_id)
            .str("state", "done")
            .str("fingerprint", rec.fingerprint.as_deref().unwrap_or(""))
            .num("makespan_s", rec.makespan_s)
            .num("cost_dollars", rec.cost_dollars)
            .int("spans", rec.spans)
            .str("summary", &rec.summary)
            .finish(),
        JobState::Failed => Reply::err(id, "run", ErrorCode::Internal, &rec.error, None),
        _ => unreachable!("render_finished called on unfinished job"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `queue-full` backpressure hint must follow *observed* run wall
    /// times, not the configured nominal knob: a service whose runs take
    /// 10x `nominal_run_s` would otherwise tell rejected clients to retry
    /// 10x too soon, turning every rejection into an immediate second
    /// rejection.
    #[test]
    fn retry_after_tracks_observed_run_times() {
        let mut svc = Service::start(ServiceConfig {
            run_workers: 2,
            ..Default::default()
        });
        let nominal = svc.inner.config.nominal_run_s;
        // Full-pipeline factor: queue capacity over workers (`depth()` is
        // the configured capacity, the worst-case backlog a rejected
        // client waits behind).
        let pipeline = 1.0 + svc.inner.queue.depth() as f64 / 2.0;
        // Before any run completes, the hint falls back to the nominal
        // knob.
        assert!((svc.inner.retry_after_hint() - nominal * pipeline).abs() < 1e-12);

        // A slow synthetic run: 5 s of wall time against a 0.5 s knob.
        svc.inner.record_run_wall_s(5.0);
        let after_one = svc.inner.retry_after_hint();
        let expected = (1.0 - RUN_WALL_EWMA_ALPHA) * nominal + RUN_WALL_EWMA_ALPHA * 5.0;
        assert!(
            (after_one - expected * pipeline).abs() < 1e-12,
            "{after_one}"
        );
        assert!(
            after_one > 2.0 * nominal * pipeline,
            "hint must grow past the nominal-derived value: {after_one}"
        );

        // More slow runs push the EWMA toward the observed time, never
        // past it.
        svc.inner.record_run_wall_s(5.0);
        svc.inner.record_run_wall_s(5.0);
        let converged = svc.inner.retry_after_hint();
        assert!(converged > after_one, "monotone toward the observed time");
        assert!(
            converged < 5.0 * pipeline,
            "EWMA never overshoots its inputs"
        );

        // Fast runs pull it back down below the nominal seed.
        for _ in 0..24 {
            svc.inner.record_run_wall_s(0.01);
        }
        assert!(svc.inner.retry_after_hint() < nominal * pipeline);
        svc.shutdown();
    }

    /// A real completed run must feed the EWMA without any synthetic
    /// recording: in-process runs finish in well under a second, so the
    /// estimate drops below the 0.5 s nominal seed.
    #[test]
    fn completed_runs_feed_the_backpressure_estimate() {
        let mut svc = Service::start(ServiceConfig {
            run_workers: 1,
            threads: 1,
            ..Default::default()
        });
        let resp = svc.handle(
            r#"{"schema":"cumulon-serve-v1","id":"r1","tenant":"t","action":"run",
                "script":"G = A' * A;","inputs":["A=64x32"],"nodes":2,"wait":true}"#,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let observed = *svc.inner.run_wall_ewma_s.lock().unwrap();
        assert!(
            observed != svc.inner.config.nominal_run_s,
            "a completed run must move the EWMA off its seed"
        );
        svc.shutdown();
    }
}
