//! Per-tenant token-bucket quotas.
//!
//! Each tenant owns one bucket. Admitting a request costs tokens —
//! `run` much more than the estimate-only fast lane — and tokens refill
//! continuously, so a tenant that bursts past its allowance is throttled
//! (with an exact `retry_after_s`) while other tenants proceed untouched.
//! Time is an explicit parameter, not a clock read, so the policy is unit
//! testable and the service owns the single monotonic clock.

/// Quota policy applied to every tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Bucket capacity: the largest burst a tenant can spend at once.
    pub capacity: f64,
    /// Tokens refilled per second.
    pub refill_per_s: f64,
    /// Tokens one `run` request costs.
    pub run_cost: f64,
    /// Tokens one `plan`/`optimize`/`check-status` request costs.
    pub cheap_cost: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            capacity: 60.0,
            refill_per_s: 2.0,
            run_cost: 10.0,
            cheap_cost: 1.0,
        }
    }
}

/// One tenant's token bucket. Starts full.
///
/// ```
/// use cumulon_serve::quota::TokenBucket;
/// let mut b = TokenBucket::new(10.0, 1.0);
/// assert!(b.try_take(10.0, 0.0).is_ok());       // burst the full bucket
/// let wait = b.try_take(5.0, 0.0).unwrap_err(); // empty: throttled
/// assert_eq!(wait, 5.0);                        // 5 tokens at 1/s
/// assert!(b.try_take(5.0, 5.0).is_ok());        // refilled by then
/// ```
#[derive(Clone, Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_s: f64,
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A full bucket with the given capacity and refill rate.
    pub fn new(capacity: f64, refill_per_s: f64) -> TokenBucket {
        TokenBucket {
            capacity,
            refill_per_s,
            tokens: capacity,
            last_s: 0.0,
        }
    }

    /// Spends `cost` tokens at time `now_s` (seconds on any monotonic
    /// scale shared by all calls). `Ok` admits; `Err(retry_after_s)`
    /// throttles with the exact wait until the bucket will hold `cost`.
    pub fn try_take(&mut self, cost: f64, now_s: f64) -> Result<(), f64> {
        // `max(0)` guards against a caller handing times out of order;
        // the bucket never drains by waiting.
        let dt = (now_s - self.last_s).max(0.0);
        self.tokens = (self.tokens + dt * self.refill_per_s).min(self.capacity);
        self.last_s = now_s;
        if self.tokens >= cost {
            self.tokens -= cost;
            return Ok(());
        }
        let missing = cost - self.tokens;
        if self.refill_per_s <= 0.0 || cost > self.capacity {
            // Never admissible; report an hour rather than infinity.
            return Err(3_600.0);
        }
        Err(missing / self.refill_per_s)
    }

    /// Tokens currently available at time `now_s`, without spending.
    pub fn available(&self, now_s: f64) -> f64 {
        let dt = (now_s - self.last_s).max(0.0);
        (self.tokens + dt * self.refill_per_s).min(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(4.0, 2.0);
        assert!(b.try_take(4.0, 0.0).is_ok());
        // A week later the bucket holds capacity, not capacity + refill.
        assert_eq!(b.available(604_800.0), 4.0);
        assert!(b.try_take(4.0, 604_800.0).is_ok());
        assert!(b.try_take(0.1, 604_800.0).is_err());
    }

    #[test]
    fn retry_after_is_exact() {
        let mut b = TokenBucket::new(10.0, 0.5);
        assert!(b.try_take(9.0, 0.0).is_ok()); // 1 token left
        let wait = b.try_take(3.0, 0.0).unwrap_err();
        assert!(
            (wait - 4.0).abs() < 1e-12,
            "2 missing at 0.5/s = 4s, got {wait}"
        );
        // Failed takes don't spend: the same call at now + wait admits.
        assert!(b.try_take(3.0, wait).is_ok());
    }

    #[test]
    fn impossible_costs_do_not_spin() {
        let mut b = TokenBucket::new(5.0, 1.0);
        assert_eq!(b.try_take(6.0, 0.0), Err(3_600.0));
        let mut frozen = TokenBucket::new(5.0, 0.0);
        assert!(frozen.try_take(5.0, 0.0).is_ok());
        assert_eq!(frozen.try_take(1.0, 100.0), Err(3_600.0));
    }

    #[test]
    fn out_of_order_times_never_drain() {
        let mut b = TokenBucket::new(10.0, 1.0);
        assert!(b.try_take(5.0, 100.0).is_ok());
        // An earlier timestamp neither refills nor drains.
        assert_eq!(b.available(50.0), 5.0);
        assert!(b.try_take(5.0, 50.0).is_ok());
    }
}
