//! The service's execution engine: one function per action, mirroring
//! the `cumulon` CLI pipelines (compile → validate inputs → provision →
//! estimate/optimize/execute) so a request through the service and the
//! same program through the CLI produce identical results — the
//! `serve-isolation` invariant `cumulon check` enforces.

use std::collections::BTreeMap;

use cumulon_cluster::{
    Cluster, ClusterSpec, ExecMode, FailurePlan, RunReport, SchedulerConfig, SpotMarket, Trace,
};
use cumulon_core::error::CoreError;
use cumulon_core::expr::InputDesc;
use cumulon_core::recovery::RecoveryConfig;
use cumulon_core::{Constraint, CostModel, Optimizer, Result, SearchSpace, SpotHazard};
use cumulon_lang::{compile_source, CompiledScript, InputSpec};
use cumulon_workloads::{run_elastic, ElasticPolicy, Workload};

use crate::protocol::Request;

/// The closed-form (spec-sheet) cost model over the whole instance
/// catalog — the same construction as `cumulon::idealized_cost_model`,
/// duplicated here because the facade crate depends on this one.
pub fn idealized_cost_model() -> CostModel {
    let mut m = CostModel::default();
    for i in cumulon_cluster::instances::catalog() {
        m.insert(
            i.name,
            cumulon_core::OpCoefficients::idealized(i, 2.0, 0.85),
        );
    }
    m
}

fn compile_and_check(req: &Request) -> Result<(CompiledScript, BTreeMap<String, InputDesc>)> {
    let compiled = compile_source(&req.script)?;
    let mut map = BTreeMap::new();
    for s in &req.inputs {
        map.insert(s.name.clone(), s.desc());
    }
    for needed in &compiled.inputs {
        if !map.contains_key(needed) {
            return Err(CoreError::Invariant(format!(
                "script input '{needed}' has no inputs specification"
            )));
        }
    }
    Ok((compiled, map))
}

fn provision(inputs: &[InputSpec], instance: &str, nodes: u32, slots: u32) -> Result<Cluster> {
    let spec_slots = if slots == 0 {
        cumulon_cluster::instances::by_name(instance)
            .map(|i| i.cores)
            .unwrap_or(1)
    } else {
        slots
    };
    let cluster = Cluster::provision(
        ClusterSpec::named(instance, nodes, spec_slots).map_err(CoreError::from)?,
    )
    .map_err(CoreError::from)?;
    // Seed derivation matches the CLI (list position + 1): the same
    // request through either entry point generates the same matrices.
    for (i, s) in inputs.iter().enumerate() {
        cluster
            .store()
            .register_generated(&s.name, s.meta(), s.generator(i as u64 + 1))
            .map_err(CoreError::from)?;
    }
    Ok(cluster)
}

/// Result of a `plan` request: the estimate for the requested cluster.
pub struct PlanOutcome {
    /// Estimated end-to-end makespan, seconds.
    pub makespan_s: f64,
    /// Estimated cost, dollars.
    pub cost_dollars: f64,
    /// Jobs in the physical plan.
    pub jobs: usize,
}

/// Estimates the script on the request's cluster shape (fast lane).
pub fn plan(req: &Request) -> Result<PlanOutcome> {
    let (compiled, descs) = compile_and_check(req)?;
    let cluster = provision(&req.inputs, &req.instance, req.nodes, req.slots)?;
    let optimizer = Optimizer::new(idealized_cost_model());
    let est = optimizer.estimate_on(&cluster, &compiled.program, &descs)?;
    Ok(PlanOutcome {
        makespan_s: est.makespan_s,
        cost_dollars: est.cost_dollars,
        jobs: est.jobs.len(),
    })
}

/// Result of an `optimize` request: the chosen deployment.
pub struct OptimizeOutcome {
    /// Chosen instance type name.
    pub instance: String,
    /// Chosen node count.
    pub nodes: u32,
    /// Chosen slots per node.
    pub slots: u32,
    /// Estimated makespan of the chosen plan, seconds.
    pub est_makespan_s: f64,
    /// Estimated cost of the chosen plan, dollars.
    pub est_cost_dollars: f64,
    /// One-line human summary.
    pub summary: String,
}

/// Searches deployments under the request's constraint (fast lane).
pub fn optimize(req: &Request) -> Result<OptimizeOutcome> {
    let (compiled, descs) = compile_and_check(req)?;
    let constraint = match (req.deadline_s, req.budget_dollars) {
        (Some(d), None) => Constraint::Deadline(d),
        (None, Some(b)) => Constraint::Budget(b),
        (None, None) => Constraint::Deadline(3_600.0),
        (Some(_), Some(_)) => unreachable!("rejected at parse time"),
    };
    let space = SearchSpace {
        max_nodes: req.max_nodes,
        ..Default::default()
    };
    let optimizer = Optimizer::new(idealized_cost_model());
    let plan = optimizer.optimize(&compiled.program, &descs, space, constraint)?;
    Ok(OptimizeOutcome {
        instance: plan.instance.name.to_string(),
        nodes: plan.nodes,
        slots: plan.slots,
        est_makespan_s: plan.estimate.makespan_s,
        est_cost_dollars: plan.estimate.cost_dollars,
        summary: plan.summary(),
    })
}

/// Compiles the spot position for a service run — same construction as
/// `cumulon run --spot`: upper half of the fleet on a deterministic
/// synthetic price trace scaled to the run's estimated horizon.
fn spot_failures(
    instance: &str,
    nodes: u32,
    bid_fraction: f64,
    horizon_s: f64,
) -> Result<FailurePlan> {
    let list = cumulon_cluster::instances::by_name(instance)
        .map(|i| i.price_per_hour)
        .ok_or_else(|| CoreError::Invariant(format!("unknown instance '{instance}'")))?;
    let hazard = SpotHazard::typical();
    let spot_nodes: Vec<u32> = (nodes.div_ceil(2)..nodes).collect();
    let step_s = (horizon_s / 12.0).max(1e-3);
    let market = SpotMarket::synthetic(42, hazard.mean_price_fraction * list, 0.6, step_s, 48)
        .with_bid(bid_fraction * list)
        .with_warning_lead(0.4 * step_s);
    Ok(FailurePlan {
        revocations: market.revocations(&spot_nodes),
        ..Default::default()
    })
}

/// A compiled script wrapped as a one-iteration workload for the elastic
/// driver (service runs with `"elastic": true`).
struct ScriptWorkload {
    program: cumulon_core::Program,
    descs: BTreeMap<String, InputDesc>,
}

impl Workload for ScriptWorkload {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn inputs(&self, _iter: usize) -> BTreeMap<String, InputDesc> {
        self.descs.clone()
    }

    fn setup(&self, _store: &cumulon_dfs::TileStore) -> Result<()> {
        Ok(())
    }

    fn program(&self, _iter: usize) -> cumulon_core::Program {
        self.program.clone()
    }
}

/// Result of a `run` request.
#[derive(Debug)]
pub struct RunOutcome {
    /// The full run report (fingerprint source).
    pub report: RunReport,
    /// Task spans the audited trace recorded.
    pub spans: usize,
}

/// Executes the request's script end to end. `threads` and `shared_pool`
/// come from the service config — every admitted run executes with
/// `shared_pool` speculation at the request's priority lane, and results
/// are bitwise-identical to a private-pool or single-threaded run of the
/// same program (the determinism contract the concurrency proptest
/// pins).
pub fn run(req: &Request, threads: usize, shared_pool: bool) -> Result<RunOutcome> {
    let (compiled, descs) = compile_and_check(req)?;
    let cluster = provision(&req.inputs, &req.instance, req.nodes, req.slots)?;
    if req.memory_budget > 0 {
        let config = cumulon_dfs::SpillConfig {
            budget_bytes: req.memory_budget,
            dir: None,
            compress: true,
        };
        cluster
            .store()
            .set_memory_budget(&config)
            .map_err(CoreError::from)?;
    }
    let config = SchedulerConfig {
        threads,
        shared_pool,
        lane_priority: req.priority,
        ..Default::default()
    };
    let failures = if req.spot {
        let horizon = Optimizer::new(idealized_cost_model())
            .estimate_on(&cluster, &compiled.program, &descs)
            .map(|e| e.makespan_s)
            .unwrap_or(3_600.0);
        spot_failures(&req.instance, req.nodes, req.bid.unwrap_or(0.5), horizon)?
    } else {
        FailurePlan::default()
    };
    if req.elastic {
        // The elastic driver traces internally and tops the fleet back
        // up; request-id span tagging does not apply on this path.
        let workload = ScriptWorkload {
            program: compiled.program.clone(),
            descs: descs.clone(),
        };
        let mut optimizer = Optimizer::new(idealized_cost_model());
        let mut run = run_elastic(
            &workload,
            &mut optimizer,
            &cluster,
            1,
            ExecMode::Simulated,
            config,
            |_| failures.clone(),
            RecoveryConfig::default(),
            ElasticPolicy::replace_at(req.nodes),
        )?;
        let live = cluster.live_nodes();
        if live < req.nodes {
            cluster.grow(req.nodes - live);
        }
        let report = run
            .reports
            .pop()
            .ok_or_else(|| CoreError::Invariant("elastic run produced no report".into()))?;
        return Ok(RunOutcome { report, spans: 0 });
    }
    let optimizer = Optimizer::new(idealized_cost_model());
    let trace = Trace::enabled();
    trace.set_request_id(&req.id);
    let report = optimizer.execute_on_traced(
        &cluster,
        &compiled.program,
        &descs,
        "serve",
        ExecMode::Simulated,
        config,
        &failures,
        RecoveryConfig::default(),
        &trace,
    )?;
    let spans = trace.snapshot().map(|l| l.tasks.len()).unwrap_or(0);
    Ok(RunOutcome { report, spans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn run_request(script: &str, inputs: &[&str]) -> Request {
        let inputs = inputs
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(",");
        Request::parse(&format!(
            "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"t\",\"tenant\":\"t\",\
             \"action\":\"run\",\"script\":\"{script}\",\"inputs\":[{inputs}],\
             \"instance\":\"m1.large\",\"nodes\":2,\"slots\":2}}"
        ))
        .unwrap()
    }

    #[test]
    fn run_matches_direct_pipeline_bitwise() {
        let req = run_request("G = A' * A;", &["A=40x20:10"]);
        let served = run(&req, 1, false).unwrap();
        let served_again = run(&req, 1, false).unwrap();
        assert_eq!(
            served.report.fingerprint(),
            served_again.report.fingerprint()
        );
        assert!(served.spans > 0, "trace recorded no spans");
        assert!(served.report.makespan_s > 0.0);
    }

    #[test]
    fn plan_and_optimize_fast_paths() {
        let mut req = run_request("C = A * B;", &["A=2000x2000", "B=2000x2000"]);
        let est = plan(&req).unwrap();
        assert!(est.makespan_s > 0.0 && est.cost_dollars > 0.0 && est.jobs > 0);
        req.deadline_s = Some(7_200.0);
        req.max_nodes = 8;
        let chosen = optimize(&req).unwrap();
        assert!(chosen.nodes >= 1 && chosen.nodes <= 8);
        assert!(chosen.summary.contains("est"));
    }

    #[test]
    fn missing_input_is_reported() {
        let req = run_request("C = A * B;", &["A=10x10"]);
        let err = run(&req, 1, false).unwrap_err();
        assert!(err.to_string().contains("'B'"), "{err}");
    }
}
