//! A minimal blocking client for the `cumulon-serve-v1` protocol — used
//! by the CI smoke harness, tests and scripts. One TCP connection, one
//! in-order request/response exchange per call.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use cumulon_core::error::CoreError;
use cumulon_core::Result;
use cumulon_trace::json::{parse, JsonValue};

/// A blocking protocol client over one TCP connection.
///
/// ```no_run
/// use cumulon_serve::Client;
/// let mut client = Client::connect("127.0.0.1:7070".parse().unwrap()).unwrap();
/// let resp = client
///     .request(r#"{"schema":"cumulon-serve-v1","id":"r1","tenant":"me","action":"plan",
///                  "script":"G = A' * A;","inputs":["A=2000x1000"]}"#)
///     .unwrap();
/// assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CoreError::Invariant(format!("cannot connect {addr}: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| CoreError::Invariant(format!("cannot clone stream: {e}")))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the matching response line,
    /// parsed. Newlines inside `line` are rejected — they would frame as
    /// multiple requests.
    pub fn request(&mut self, line: &str) -> Result<JsonValue> {
        if line.contains('\n') {
            return Err(CoreError::Invariant("request must be a single line".into()));
        }
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| CoreError::Invariant(format!("send failed: {e}")))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| CoreError::Invariant(format!("receive failed: {e}")))?;
        if response.is_empty() {
            return Err(CoreError::Invariant("server closed the connection".into()));
        }
        parse(&response).map_err(|e| CoreError::Invariant(format!("bad response JSON: {e}")))
    }
}
