//! The service's determinism contract, property-tested: N concurrent
//! tenant clients racing randomly shaped programs through the admission
//! path (quota, bounded priority queue, shared speculation pool) each
//! receive a fingerprint bitwise-identical to a serial, private-pool
//! replay of the same request through the engine pipeline — at scheduler
//! threads 1 and N. Contention may reorder speculative work; it must
//! never change what a run computes.

use proptest::prelude::*;

use cumulon_serve::engine;
use cumulon_serve::protocol::Request;
use cumulon_serve::quota::QuotaConfig;
use cumulon_serve::{Service, ServiceConfig};
use cumulon_trace::json::parse;

fn request_line(
    id: &str,
    tenant: &str,
    priority: usize,
    rows: usize,
    cols: usize,
    tile: usize,
) -> String {
    format!(
        "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\
         \"action\":\"run\",\"script\":\"G = A' * A;\",\"inputs\":[\"A={rows}x{cols}:{tile}\"],\
         \"instance\":\"m1.large\",\"nodes\":3,\"slots\":2,\"priority\":{priority}}}"
    )
}

fn threads_n() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4))
}

proptest! {
    // Each case spins up two services and 2×tenants full runs; a handful
    // of cases keeps the property meaningful inside the CI budget.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_clients_match_serial_replay(
        rows in 16usize..64,
        cols in 8usize..32,
        tile in 4usize..16,
        tenants in 2usize..5,
    ) {
        // Serial ground truth: the same request, engine-direct, one
        // scheduler thread, private speculation pool.
        let baseline_req =
            Request::parse(&request_line("base", "base", 0, rows, cols, tile)).unwrap();
        let baseline = engine::run(&baseline_req, 1, false)
            .expect("serial replay runs")
            .report
            .fingerprint();

        for threads in [1usize, threads_n()] {
            let service = Service::start(ServiceConfig {
                threads,
                run_workers: tenants,
                queue_depth: tenants,
                quota: QuotaConfig { capacity: 1e6, refill_per_s: 1e3, ..Default::default() },
                ..Default::default()
            });
            let replies: Vec<String> = std::thread::scope(|s| {
                (0..tenants)
                    .map(|i| {
                        let service = &service;
                        let line = request_line(
                            &format!("req-{i}"),
                            &format!("tenant-{i}"),
                            // Distinct priority lanes exercise the
                            // priority-ordered shared pool.
                            i,
                            rows,
                            cols,
                            tile,
                        );
                        s.spawn(move || service.handle(&line))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("client thread panicked"))
                    .collect()
            });
            for (i, reply) in replies.iter().enumerate() {
                let v = parse(reply).expect("reply is valid JSON");
                prop_assert_eq!(
                    v.get("ok").and_then(|x| x.as_bool()),
                    Some(true),
                    "tenant-{} rejected at threads {}: {}", i, threads, reply
                );
                let fp = v
                    .get("fingerprint")
                    .and_then(|x| x.as_str())
                    .expect("run reply carries a fingerprint");
                prop_assert_eq!(
                    fp, &baseline,
                    "tenant-{} diverged from the serial replay at threads {}", i, threads
                );
            }
        }
    }
}
