//! Admission-control edge cases, driven through [`Service::handle`] —
//! the same entry point the TCP shell uses:
//!
//! * `queue-full` rejections carry an actionable `retry_after_s`;
//! * one tenant exhausting its quota throttles *that tenant only* —
//!   another tenant's requests keep flowing;
//! * graceful shutdown drains every admitted run to completion and
//!   drops no receipts, while refusing new work.

use std::time::{Duration, Instant};

use cumulon_serve::quota::QuotaConfig;
use cumulon_serve::{JobState, Service, ServiceConfig};
use cumulon_trace::json::{parse, JsonValue};

/// A `run` request line for the tiny Gram program the tests share.
fn run_line(id: &str, tenant: &str, wait: bool) -> String {
    format!(
        "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\
         \"action\":\"run\",\"script\":\"G = A' * A;\",\"inputs\":[\"A=40x20:10\"],\
         \"instance\":\"m1.large\",\"nodes\":2,\"slots\":2,\"wait\":{wait}}}"
    )
}

/// A `run` request whose chained large multiplies keep a worker busy for
/// long enough (tens of milliseconds at least) that the test can fill the
/// queue behind it deterministically.
fn slow_run_line(id: &str, tenant: &str) -> String {
    format!(
        "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\
         \"action\":\"run\",\"script\":\"B = A * A; C = B * B; D = C * C;\",\
         \"inputs\":[\"A=4000x4000:200\"],\
         \"instance\":\"m1.large\",\"nodes\":2,\"slots\":2,\"wait\":false}}"
    )
}

/// A quota policy generous enough that admission never throttles.
fn open_quota() -> QuotaConfig {
    QuotaConfig {
        capacity: 1e6,
        refill_per_s: 1e3,
        ..QuotaConfig::default()
    }
}

fn json(reply: &str) -> JsonValue {
    parse(reply).unwrap_or_else(|e| panic!("reply is not valid JSON ({e}): {reply}"))
}

fn str_of<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key)
        .and_then(|x| x.as_str())
        .unwrap_or_else(|| panic!("missing string '{key}' in {v:?}"))
}

fn is_ok(v: &JsonValue) -> bool {
    v.get("ok").and_then(|x| x.as_bool()) == Some(true)
}

/// Polls until the named job leaves `Queued` (a worker picked it up).
fn wait_until_running(svc: &Service, job: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let state = svc.job(job).expect("job record exists").state;
        if state != JobState::Queued {
            return;
        }
        assert!(Instant::now() < deadline, "job {job} never started");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn queue_full_rejection_carries_retry_after() {
    let mut svc = Service::start(ServiceConfig {
        run_workers: 1,
        queue_depth: 2,
        threads: 1,
        quota: open_quota(),
        ..Default::default()
    });

    // Occupy the only worker, then verify it has actually dequeued the
    // slow job so the queue is empty when the burst arrives.
    let slow = json(&svc.handle(&slow_run_line("slow", "alice")));
    assert!(is_ok(&slow), "{slow:?}");
    wait_until_running(&svc, str_of(&slow, "job"));

    // Two async runs fit the depth-2 queue; the third must bounce.
    let mut accepted = Vec::new();
    for i in 0..2 {
        let v = json(&svc.handle(&run_line(&format!("q{i}"), "alice", false)));
        assert!(is_ok(&v), "queued run {i} rejected: {v:?}");
        accepted.push(str_of(&v, "job").to_string());
    }
    let bounced = json(&svc.handle(&run_line("q2", "alice", false)));
    assert!(!is_ok(&bounced), "expected queue-full, got {bounced:?}");
    assert_eq!(str_of(&bounced, "error"), "queue-full");
    let retry = bounced
        .get("retry_after_s")
        .and_then(|x| x.as_f64())
        .expect("queue-full carries retry_after_s");
    assert!(retry > 0.0, "retry_after_s must be positive, got {retry}");

    // The rejection dropped nothing that was admitted: draining finishes
    // the slow job and both queued runs.
    svc.shutdown();
    for job in accepted {
        let rec = svc.job(&job).expect("receipt retained");
        assert_eq!(rec.state, JobState::Done, "{job}: {}", rec.error);
    }
}

#[test]
fn quota_throttles_one_tenant_without_starving_another() {
    // Capacity covers exactly one run; refill is slow enough that the
    // second request inside the test window must throttle.
    let mut svc = Service::start(ServiceConfig {
        run_workers: 1,
        threads: 1,
        quota: QuotaConfig {
            capacity: 10.0,
            refill_per_s: 0.01,
            run_cost: 10.0,
            cheap_cost: 1.0,
        },
        ..Default::default()
    });

    let first = json(&svc.handle(&run_line("a1", "alice", true)));
    assert!(is_ok(&first), "{first:?}");
    let fingerprint = str_of(&first, "fingerprint").to_string();
    assert!(!fingerprint.is_empty());

    let throttled = json(&svc.handle(&run_line("a2", "alice", true)));
    assert!(!is_ok(&throttled), "{throttled:?}");
    assert_eq!(str_of(&throttled, "error"), "quota-exhausted");
    let retry = throttled
        .get("retry_after_s")
        .and_then(|x| x.as_f64())
        .expect("quota-exhausted carries retry_after_s");
    assert!(retry > 0.0);

    // Buckets are per-tenant: bob is untouched by alice's exhaustion,
    // and his identical program reproduces her fingerprint bitwise.
    let bob = json(&svc.handle(&run_line("b1", "bob", true)));
    assert!(is_ok(&bob), "throttle leaked across tenants: {bob:?}");
    assert_eq!(str_of(&bob, "fingerprint"), fingerprint);
    svc.shutdown();
}

#[test]
fn graceful_shutdown_drains_all_receipts_and_refuses_new_work() {
    let mut svc = Service::start(ServiceConfig {
        run_workers: 1,
        queue_depth: 8,
        threads: 1,
        quota: open_quota(),
        ..Default::default()
    });

    let mut jobs = Vec::new();
    for i in 0..3 {
        let v = json(&svc.handle(&run_line(&format!("r{i}"), "alice", false)));
        assert!(is_ok(&v), "{v:?}");
        jobs.push(str_of(&v, "job").to_string());
    }
    svc.shutdown();

    // Every admitted run finished and kept its receipt.
    let mut fingerprints = Vec::new();
    for job in &jobs {
        let rec = svc.job(job).expect("receipt survived shutdown");
        assert_eq!(rec.state, JobState::Done, "{job}: {}", rec.error);
        fingerprints.push(rec.fingerprint.clone().expect("fingerprint recorded"));
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "identical programs must drain to identical fingerprints"
    );

    // Post-drain: no new work, but the audit trail still answers.
    let refused = json(&svc.handle(&run_line("late", "alice", true)));
    assert_eq!(str_of(&refused, "error"), "shutting-down");
    let status = json(&svc.handle(&format!(
        "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"s\",\"tenant\":\"alice\",\
         \"action\":\"check-status\",\"job\":\"{}\"}}",
        jobs[0]
    )));
    assert!(is_ok(&status), "{status:?}");
    assert_eq!(str_of(&status, "state"), "done");
}
