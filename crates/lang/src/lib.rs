//! # cumulon-lang
//!
//! The surface language of Cumulon-RS: a small R-flavoured linear-algebra
//! scripting language compiled to [`cumulon_core::Program`]s. This is the
//! "rapidly develop" half of the paper's pitch — statisticians write
//! assignments over named matrices, not physical plans:
//!
//! ```text
//! # GNMF multiplicative updates
//! WtV  = W' * V;
//! WtW  = W' * W;
//! H1   = H .* WtV ./ (WtW * H);
//! W1   = W .* (V * H1') ./ (W * (H1 * H1'));
//! out H1, W1;
//! ```
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! script   := { statement }
//! statement:= ident "=" expr ";"            (assignment; last ones may be outputs)
//!           | "out" ident { "," ident } ";" (declare outputs explicitly)
//! expr     := term { ("+" | "-") term }
//! term     := factor { ("*" | ".*" | "./") factor }
//! factor   := ["-"] postfix | number "*"? postfix   (scalar scaling)
//! postfix  := atom { "'" }                  (transpose suffix)
//! atom     := ident | number | "(" expr ")"
//!           | ("abs" | "sqrt" | "sq") "(" expr ")"
//! ```
//!
//! `*` is matrix product; `.*` and `./` are element-wise. A bare number in
//! multiplicative position scales a matrix. Assignments define names
//! usable in later statements; names never assigned are program inputs.
//! Without an `out` declaration, every assigned name that no later
//! statement consumes becomes an output.

pub mod ast;
pub mod compile;
pub mod input;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, Expr, Script, Stmt, UnFn};
pub use compile::{compile, CompiledScript};
pub use input::InputSpec;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;

use cumulon_core::Result;

/// One-call convenience: source text → compiled program.
pub fn compile_source(source: &str) -> Result<CompiledScript> {
    let tokens = tokenize(source)?;
    let script = parse(&tokens)?;
    compile(&script)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_smoke() {
        let compiled = compile_source("G = A' * A;").unwrap();
        assert_eq!(compiled.inputs, vec!["A"]);
        assert_eq!(compiled.outputs(), vec!["G"]);
    }
}
