//! Recursive-descent parser for the surface language.

use cumulon_core::error::CoreError;
use cumulon_core::Result;

use crate::ast::{BinOp, Expr, Script, Stmt, UnFn};
use crate::lexer::{Token, TokenKind};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

fn err(line: usize, msg: impl Into<String>) -> CoreError {
    CoreError::Invariant(format!("parse error at line {line}: {}", msg.into()))
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        let line = self.line();
        match self.bump() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(err(t.line, format!("expected {what}, found {:?}", t.kind))),
            None => Err(err(line, format!("expected {what}, found end of input"))),
        }
    }

    fn parse_script(&mut self) -> Result<Script> {
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Script { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        match self.peek() {
            Some(TokenKind::Out) => {
                self.bump();
                let mut names = vec![self.parse_ident()?];
                while self.peek() == Some(&TokenKind::Comma) {
                    self.bump();
                    names.push(self.parse_ident()?);
                }
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Out { names, line })
            }
            Some(TokenKind::Ident(_)) => {
                let name = self.parse_ident()?;
                self.expect(&TokenKind::Assign, "'='")?;
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Assign { name, expr, line })
            }
            Some(other) => Err(err(line, format!("expected a statement, found {other:?}"))),
            None => Err(err(line, "expected a statement, found end of input")),
        }
    }

    fn parse_ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(n),
                ..
            }) => Ok(n.clone()),
            Some(t) => Err(err(
                t.line,
                format!("expected an identifier, found {:?}", t.kind),
            )),
            None => Err(err(line, "expected an identifier, found end of input")),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::MatMul,
                Some(TokenKind::DotStar) => BinOp::ElemMul,
                Some(TokenKind::DotSlash) => BinOp::ElemDiv,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(TokenKind::Minus) => {
                self.bump();
                let inner = self.parse_factor()?;
                Ok(Expr::Scale(-1.0, Box::new(inner)))
            }
            Some(&TokenKind::Number(value)) => {
                self.bump();
                // A bare number is a scalar factor: `2 * A`, `2 A`… only
                // the explicit-`*` form and direct juxtaposition with a
                // postfix expression are accepted.
                match self.peek() {
                    Some(TokenKind::Star) => {
                        self.bump();
                        let inner = self.parse_factor()?;
                        Ok(Expr::Scale(value, Box::new(inner)))
                    }
                    Some(TokenKind::Ident(_)) | Some(TokenKind::LParen) => {
                        let inner = self.parse_postfix()?;
                        Ok(Expr::Scale(value, Box::new(inner)))
                    }
                    _ => Err(err(
                        self.line(),
                        "a number must scale a matrix (write `2 * A` or `2A`)",
                    )),
                }
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_atom()?;
        while self.peek() == Some(&TokenKind::Tick) {
            self.bump();
            e = Expr::Transpose(Box::new(e));
        }
        Ok(e)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.bump().cloned() {
            Some(Token {
                kind: TokenKind::Ident(name),
                line,
            }) => {
                // Function application?
                let func = match name.as_str() {
                    "abs" => Some(UnFn::Abs),
                    "sqrt" => Some(UnFn::Sqrt),
                    "sq" => Some(UnFn::Sq),
                    _ => None,
                };
                if let (Some(f), Some(TokenKind::LParen)) = (func, self.peek()) {
                    let _ = f;
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    return Ok(Expr::Apply(func.expect("checked above"), Box::new(inner)));
                }
                let _ = line;
                Ok(Expr::Var(name))
            }
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            Some(t) => Err(err(
                t.line,
                format!("expected an expression, found {:?}", t.kind),
            )),
            None => Err(err(line, "expected an expression, found end of input")),
        }
    }
}

/// Parses a token stream into a script.
pub fn parse(tokens: &[Token]) -> Result<Script> {
    Parser { tokens, pos: 0 }.parse_script()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Script {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    fn expr_of(src: &str) -> Expr {
        let script = parse_src(&format!("X = {src};"));
        match &script.stmts[0] {
            Stmt::Assign { expr, .. } => expr.clone(),
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        // A + B * C = A + (B*C)
        let e = expr_of("A + B * C");
        let Expr::Bin(BinOp::Add, _, rhs) = e else {
            panic!("top must be Add")
        };
        assert!(matches!(*rhs, Expr::Bin(BinOp::MatMul, _, _)));
    }

    #[test]
    fn left_associativity() {
        // A * B * C = (A*B)*C
        let e = expr_of("A * B * C");
        let Expr::Bin(BinOp::MatMul, lhs, _) = e else {
            panic!()
        };
        assert!(matches!(*lhs, Expr::Bin(BinOp::MatMul, _, _)));
    }

    #[test]
    fn transpose_binds_tightest() {
        // A * B' = A * (B')
        let e = expr_of("A * B'");
        let Expr::Bin(BinOp::MatMul, _, rhs) = e else {
            panic!()
        };
        assert!(matches!(*rhs, Expr::Transpose(_)));
        // Double transpose parses.
        let e = expr_of("A''");
        assert!(matches!(e, Expr::Transpose(_)));
    }

    #[test]
    fn parenthesised_transpose() {
        let e = expr_of("(A * B)'");
        assert!(matches!(e, Expr::Transpose(_)));
    }

    #[test]
    fn scalar_scaling_forms() {
        assert_eq!(
            expr_of("2 * A"),
            Expr::Scale(2.0, Box::new(Expr::Var("A".into())))
        );
        assert_eq!(
            expr_of("2A"),
            Expr::Scale(2.0, Box::new(Expr::Var("A".into())))
        );
        assert_eq!(
            expr_of("0.5 (A + B)"),
            Expr::Scale(
                0.5,
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Var("A".into())),
                    Box::new(Expr::Var("B".into()))
                ))
            )
        );
        assert_eq!(
            expr_of("-A"),
            Expr::Scale(-1.0, Box::new(Expr::Var("A".into())))
        );
    }

    #[test]
    fn functions() {
        assert!(matches!(expr_of("abs(A)"), Expr::Apply(UnFn::Abs, _)));
        assert!(matches!(
            expr_of("sqrt(A .* A)"),
            Expr::Apply(UnFn::Sqrt, _)
        ));
        assert!(matches!(expr_of("sq(A)"), Expr::Apply(UnFn::Sq, _)));
        // A variable can still be called `absolute`.
        assert_eq!(expr_of("absolute"), Expr::Var("absolute".into()));
        // And `abs` without parens is a plain variable.
        assert_eq!(expr_of("abs"), Expr::Var("abs".into()));
    }

    #[test]
    fn statements_and_outputs() {
        let s = parse_src("X = A; out X, Y;");
        assert_eq!(s.stmts.len(), 2);
        assert!(matches!(&s.stmts[1], Stmt::Out { names, .. } if names == &["X", "Y"]));
    }

    #[test]
    fn elementwise_chain() {
        let e = expr_of("H .* WtV ./ (WtW * H)");
        let Expr::Bin(BinOp::ElemDiv, lhs, _) = e else {
            panic!("left-assoc chain")
        };
        assert!(matches!(*lhs, Expr::Bin(BinOp::ElemMul, _, _)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let toks = tokenize("X = A;\nY = ;").unwrap();
        let e = parse(&toks).unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&tokenize("= A;").unwrap()).is_err());
        assert!(parse(&tokenize("X = A").unwrap()).is_err()); // missing semi
        assert!(parse(&tokenize("X = 2;").unwrap()).is_err()); // bare scalar
        assert!(parse(&tokenize("out;").unwrap()).is_err());
        assert!(parse(&tokenize("X = (A;").unwrap()).is_err());
    }
}
