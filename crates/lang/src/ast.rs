//! Abstract syntax of the surface language.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Matrix product `*`.
    MatMul,
    /// Element-wise `+`.
    Add,
    /// Element-wise `-`.
    Sub,
    /// Element-wise `.*`.
    ElemMul,
    /// Element-wise `./`.
    ElemDiv,
}

/// Unary element-wise functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnFn {
    /// `abs(x)`
    Abs,
    /// `sqrt(x)`
    Sqrt,
    /// `sq(x)` — element-wise square.
    Sq,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A matrix name (input or earlier assignment).
    Var(String),
    /// Binary combination.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Postfix transpose.
    Transpose(Box<Expr>),
    /// Scalar multiple.
    Scale(f64, Box<Expr>),
    /// Unary element-wise function application.
    Apply(UnFn, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr;`
    Assign {
        /// Target name.
        name: String,
        /// Right-hand side.
        expr: Expr,
        /// Source line, for diagnostics.
        line: usize,
    },
    /// `out a, b;` — explicit output declaration.
    Out {
        /// Declared output names.
        names: Vec<String>,
        /// Source line.
        line: usize,
    },
}

/// A whole script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Script {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Expr {
    /// Variables referenced (with duplicates).
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(n) => out.push(n.clone()),
            Expr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Expr::Transpose(a) | Expr::Scale(_, a) | Expr::Apply(_, a) => a.vars(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_collects_all() {
        let e = Expr::Bin(
            BinOp::MatMul,
            Box::new(Expr::Transpose(Box::new(Expr::Var("A".into())))),
            Box::new(Expr::Scale(2.0, Box::new(Expr::Var("B".into())))),
        );
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["A", "B"]);
    }
}
