//! Compilation: scripts → [`cumulon_core::Program`]s.
//!
//! Each assignment's expression compiles to arena nodes; assigned names
//! become available to later statements. Names never assigned are the
//! program's **inputs**. Outputs are the names in `out` declarations, or —
//! when absent — every assigned name no later statement consumed.

use std::collections::BTreeMap;

use cumulon_core::error::CoreError;
use cumulon_core::expr::{ExprId, ProgramBuilder, UnaryOp};
use cumulon_core::{Program, Result};
use cumulon_matrix::tile::ElemOp;

use crate::ast::{BinOp, Expr, Script, Stmt, UnFn};

/// A compiled script: the program plus name metadata.
#[derive(Debug, Clone)]
pub struct CompiledScript {
    /// The compiled matrix program (outputs registered).
    pub program: Program,
    /// Names the script reads but never assigns, sorted: the inputs the
    /// caller must describe and register.
    pub inputs: Vec<String>,
}

impl CompiledScript {
    /// Output names, in declaration order.
    pub fn outputs(&self) -> Vec<&str> {
        self.program
            .outputs
            .iter()
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Compiles a parsed script.
pub fn compile(script: &Script) -> Result<CompiledScript> {
    let mut b = ProgramBuilder::new();
    // Name → current arena id (assignments shadow earlier ones).
    let mut env: BTreeMap<String, ExprId> = BTreeMap::new();
    let mut inputs: Vec<String> = Vec::new();
    // Statement index of each name's last assignment, in order.
    let mut last_assign: Vec<(String, usize)> = Vec::new();
    let mut last_read: BTreeMap<String, usize> = BTreeMap::new();
    let mut declared_outputs: Vec<(String, usize)> = Vec::new();

    for (idx, stmt) in script.stmts.iter().enumerate() {
        match stmt {
            Stmt::Assign { name, expr, line } => {
                let mut used = Vec::new();
                expr.vars(&mut used);
                if used.contains(name) && !env.contains_key(name) {
                    return Err(CoreError::Invariant(format!(
                        "line {line}: '{name}' used before assignment on its own right-hand side"
                    )));
                }
                for u in used {
                    last_read.insert(u, idx);
                }
                let id = compile_expr(expr, &mut b, &mut env, &mut inputs, *line)?;
                env.insert(name.clone(), id);
                last_assign.retain(|(n, _)| n != name);
                last_assign.push((name.clone(), idx));
            }
            Stmt::Out { names, line } => {
                for n in names {
                    declared_outputs.push((n.clone(), *line));
                }
            }
        }
    }

    // Resolve outputs.
    if declared_outputs.is_empty() {
        // A name's final assignment is an output unless a strictly later
        // statement reads it (a read in the same statement sees the *old*
        // value, so `X = X * X;` still outputs X).
        let mut any = false;
        for (name, assign_idx) in &last_assign {
            let read_later = last_read.get(name).is_some_and(|&r| r > *assign_idx);
            if !read_later {
                b.output(name, env[name]);
                any = true;
            }
        }
        if !any {
            return Err(CoreError::Invariant(
                "script has no outputs: every assignment is consumed (add an `out` statement)"
                    .into(),
            ));
        }
    } else {
        for (name, line) in &declared_outputs {
            let id = *env.get(name).ok_or_else(|| {
                CoreError::Invariant(format!("line {line}: output '{name}' was never assigned"))
            })?;
            b.output(name, id);
        }
    }

    inputs.sort();
    inputs.dedup();
    Ok(CompiledScript {
        program: b.build(),
        inputs,
    })
}

// `line` is threaded down so nested sub-expressions can report their
// source line once arity/shape checks land here.
#[allow(clippy::only_used_in_recursion)]
fn compile_expr(
    expr: &Expr,
    b: &mut ProgramBuilder,
    env: &mut BTreeMap<String, ExprId>,
    inputs: &mut Vec<String>,
    line: usize,
) -> Result<ExprId> {
    Ok(match expr {
        Expr::Var(name) => match env.get(name) {
            Some(&id) => id,
            None => {
                let id = b.input(name);
                env.insert(name.clone(), id);
                inputs.push(name.clone());
                id
            }
        },
        Expr::Bin(op, a, rhs) => {
            let a = compile_expr(a, b, env, inputs, line)?;
            let rhs = compile_expr(rhs, b, env, inputs, line)?;
            match op {
                BinOp::MatMul => b.mul(a, rhs),
                BinOp::Add => b.elem(ElemOp::Add, a, rhs),
                BinOp::Sub => b.elem(ElemOp::Sub, a, rhs),
                BinOp::ElemMul => b.elem(ElemOp::Mul, a, rhs),
                BinOp::ElemDiv => b.elem(ElemOp::Div, a, rhs),
            }
        }
        Expr::Transpose(a) => {
            let a = compile_expr(a, b, env, inputs, line)?;
            b.transpose(a)
        }
        Expr::Scale(f, a) => {
            let a = compile_expr(a, b, env, inputs, line)?;
            b.scale(a, *f)
        }
        Expr::Apply(f, a) => {
            let a = compile_expr(a, b, env, inputs, line)?;
            let op = match f {
                UnFn::Abs => UnaryOp::Abs,
                UnFn::Sqrt => UnaryOp::Sqrt,
                UnFn::Sq => UnaryOp::Square,
            };
            b.unary(op, a)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use cumulon_core::expr::InputDesc;
    use cumulon_matrix::MatrixMeta;

    #[test]
    fn inputs_and_outputs_inferred() {
        let c = compile_source("Y = A * X;\nZ = Y + B;").unwrap();
        assert_eq!(c.inputs, vec!["A", "B", "X"]);
        // Y is consumed by the Z assignment; only Z is an output.
        assert_eq!(c.outputs(), vec!["Z"]);
    }

    #[test]
    fn explicit_outputs() {
        let c = compile_source("Y = A * X;\nZ = Y + B;\nout Y, Z;").unwrap();
        assert_eq!(c.outputs(), vec!["Y", "Z"]);
    }

    #[test]
    fn gnmf_update_compiles_and_infers() {
        let src = r#"
            # one GNMF H-update
            WtV = W' * V;
            WtW = W' * W;
            H1  = H .* WtV ./ (WtW * H);
        "#;
        let c = compile_source(src).unwrap();
        assert_eq!(c.inputs, vec!["H", "V", "W"]);
        assert_eq!(c.outputs(), vec!["H1"]);
        // Shape-check against plausible metas.
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "V".into(),
            InputDesc::sparse(MatrixMeta::new(100, 80, 10), 0.05),
        );
        inputs.insert("W".into(), InputDesc::dense(MatrixMeta::new(100, 8, 10)));
        inputs.insert("H".into(), InputDesc::dense(MatrixMeta::new(8, 80, 10)));
        let info = c.program.infer(&inputs).unwrap();
        let (_, root) = &c.program.outputs[0];
        assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (8, 80));
    }

    #[test]
    fn shadowing_assignments() {
        // X = A; X = X * X; → output is A².
        let c = compile_source("X = A;\nX = X * X;").unwrap();
        assert_eq!(c.inputs, vec!["A"]);
        assert_eq!(c.outputs(), vec!["X"]);
    }

    #[test]
    fn self_reference_before_assignment_rejected() {
        let e = compile_source("X = X * A;").unwrap_err();
        assert!(e.to_string().contains("used before assignment"), "{e}");
    }

    #[test]
    fn undeclared_output_rejected() {
        let e = compile_source("X = A;\nout Y;").unwrap_err();
        assert!(e.to_string().contains("never assigned"), "{e}");
    }

    #[test]
    fn all_consumed_without_out_rejected() {
        // Y consumes X, Z consumes Y, nothing consumes Z → Z is output: OK.
        assert!(compile_source("X = A; Y = X; Z = Y;").is_ok());
        // Cycle-free but everything consumed is impossible without out;
        // instead simulate by outputting nothing: single consumed chain is
        // fine, so use `out` with missing name handled above. Here check
        // the no-assignments case.
        assert!(compile_source("").is_err());
    }

    #[test]
    fn scalar_and_function_compile() {
        let c = compile_source("Y = 2 * abs(A - B) + sqrt(sq(A));").unwrap();
        assert_eq!(c.inputs, vec!["A", "B"]);
        let mut inputs = BTreeMap::new();
        for n in ["A", "B"] {
            inputs.insert(n.to_string(), InputDesc::dense(MatrixMeta::new(6, 6, 3)));
        }
        c.program.infer(&inputs).unwrap();
    }
}
