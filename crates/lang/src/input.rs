//! Input specifications: the `NAME=ROWSxCOLS[@DENSITY][:TILE]` syntax
//! shared by the `cumulon` CLI (`--input`) and the `cumulon serve`
//! protocol (`"inputs"` array). Lives here, next to the script compiler,
//! so every entry point parses and materializes inputs identically.

use cumulon_core::error::CoreError;
use cumulon_core::expr::InputDesc;
use cumulon_core::Result;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::MatrixMeta;

/// A parsed input specification: a named, generator-backed matrix.
///
/// ```
/// use cumulon_lang::InputSpec;
/// let s = InputSpec::parse("V=5000x4000@0.01:500").unwrap();
/// assert_eq!((s.rows, s.cols, s.tile), (5000, 4000, 500));
/// assert_eq!(s.density, 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Matrix name.
    pub name: String,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Density (1.0 = dense).
    pub density: f64,
    /// Tile size.
    pub tile: usize,
}

impl InputSpec {
    /// Parses `NAME=ROWSxCOLS[@DENSITY][:TILE]`.
    pub fn parse(spec: &str) -> Result<InputSpec> {
        let bad = |m: &str| CoreError::Invariant(format!("bad input '{spec}': {m}"));
        let (name, rest) = spec.split_once('=').ok_or_else(|| bad("missing '='"))?;
        let (dims_part, tile) = match rest.split_once(':') {
            Some((d, t)) => (
                d,
                t.parse::<usize>()
                    .map_err(|_| bad("tile size must be an integer"))?,
            ),
            None => (rest, 1_000),
        };
        let (dims, density) = match dims_part.split_once('@') {
            Some((d, dens)) => (
                d,
                dens.parse::<f64>()
                    .map_err(|_| bad("density must be a number"))?,
            ),
            None => (dims_part, 1.0),
        };
        let (r, c) = dims
            .split_once('x')
            .ok_or_else(|| bad("dimensions must be RxC"))?;
        let rows = r
            .parse::<usize>()
            .map_err(|_| bad("rows must be an integer"))?;
        let cols = c
            .parse::<usize>()
            .map_err(|_| bad("cols must be an integer"))?;
        if rows == 0 || cols == 0 || tile == 0 {
            return Err(bad("dimensions and tile size must be positive"));
        }
        if !(0.0..=1.0).contains(&density) {
            return Err(bad("density must be in [0, 1]"));
        }
        Ok(InputSpec {
            name: name.to_string(),
            rows,
            cols,
            density,
            tile,
        })
    }

    /// Tile-grid metadata for the matrix this spec describes.
    pub fn meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.rows, self.cols, self.tile)
    }

    /// Optimizer-facing input description (dense or sparse by density),
    /// flagged as generator-backed.
    pub fn desc(&self) -> InputDesc {
        let mut d = if self.density < 1.0 {
            InputDesc::sparse(self.meta(), self.density)
        } else {
            InputDesc::dense(self.meta())
        };
        d.generated = true;
        d
    }

    /// The deterministic generator that materializes this input. Every
    /// entry point must derive `seed` the same way (position in the input
    /// list + 1) for run results to be comparable across the CLI and the
    /// service.
    pub fn generator(&self, seed: u64) -> Generator {
        if self.density < 1.0 {
            Generator::SparseUniform {
                seed,
                density: self.density,
            }
        } else {
            Generator::DenseGaussian { seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_spec_parsing() {
        assert_eq!(
            InputSpec::parse("A=200x100").unwrap(),
            InputSpec {
                name: "A".into(),
                rows: 200,
                cols: 100,
                density: 1.0,
                tile: 1000
            }
        );
        assert_eq!(
            InputSpec::parse("V=5000x4000@0.01:500").unwrap(),
            InputSpec {
                name: "V".into(),
                rows: 5000,
                cols: 4000,
                density: 0.01,
                tile: 500
            }
        );
        assert!(InputSpec::parse("A").is_err());
        assert!(InputSpec::parse("A=xx").is_err());
        assert!(InputSpec::parse("A=10x0").is_err());
        assert!(InputSpec::parse("A=10x10@2.0").is_err());
        assert!(InputSpec::parse("A=10x10:0").is_err());
    }

    #[test]
    fn sparse_and_dense_descriptions() {
        let dense = InputSpec::parse("A=100x100").unwrap();
        assert!(dense.desc().generated);
        assert!(matches!(
            dense.generator(3),
            Generator::DenseGaussian { seed: 3 }
        ));
        let sparse = InputSpec::parse("A=100x100@0.5").unwrap();
        assert!(matches!(
            sparse.generator(3),
            Generator::SparseUniform { seed: 3, .. }
        ));
    }
}
