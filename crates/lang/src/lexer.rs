//! Tokenizer for the surface language.

use cumulon_core::error::CoreError;
use cumulon_core::Result;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (matrix name or keyword-like function name).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `.*`
    DotStar,
    /// `./`
    DotSlash,
    /// `'` (postfix transpose)
    Tick,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `out` keyword.
    Out,
}

/// A token with its source position (byte offset and 1-based line).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// 1-based line number for diagnostics.
    pub line: usize,
}

fn err(line: usize, msg: impl Into<String>) -> CoreError {
    CoreError::Invariant(format!("parse error at line {line}: {}", msg.into()))
}

/// Tokenizes source text. `#` starts a line comment.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let bytes = source.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Assign,
                    line,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    line,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
                i += 1;
            }
            '\'' => {
                tokens.push(Token {
                    kind: TokenKind::Tick,
                    line,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                // `.*`, `./`, or the start of a fraction like `.5`.
                match bytes.get(i + 1).map(|&b| b as char) {
                    Some('*') => {
                        tokens.push(Token {
                            kind: TokenKind::DotStar,
                            line,
                        });
                        i += 2;
                    }
                    Some('/') => {
                        tokens.push(Token {
                            kind: TokenKind::DotSlash,
                            line,
                        });
                        i += 2;
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let (value, next) = lex_number(source, i, line)?;
                        tokens.push(Token {
                            kind: TokenKind::Number(value),
                            line,
                        });
                        i = next;
                    }
                    _ => return Err(err(line, "stray '.'")),
                }
            }
            '/' => {
                return Err(err(
                    line,
                    "matrix division is not defined; use ./ for element-wise",
                ))
            }
            c if c.is_ascii_digit() => {
                let (value, next) = lex_number(source, i, line)?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = if word == "out" {
                    TokenKind::Out
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token { kind, line });
            }
            other => return Err(err(line, format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

fn lex_number(source: &str, start: usize, line: usize) -> Result<(f64, usize)> {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !seen_dot && !seen_exp {
            // A dot followed by `*` or `/` is an operator, not a fraction.
            match bytes.get(i + 1).map(|&b| b as char) {
                Some('*') | Some('/') => break,
                _ => {
                    seen_dot = true;
                    i += 1;
                }
            }
        } else if (c == 'e' || c == 'E') && !seen_exp {
            seen_exp = true;
            i += 1;
            if matches!(bytes.get(i).map(|&b| b as char), Some('+') | Some('-')) {
                i += 1;
            }
        } else {
            break;
        }
    }
    source[start..i]
        .parse::<f64>()
        .map(|v| (v, i))
        .map_err(|_| err(line, format!("bad number literal '{}'", &source[start..i])))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("G = A' * B;"),
            vec![
                Ident("G".into()),
                Assign,
                Ident("A".into()),
                Tick,
                Star,
                Ident("B".into()),
                Semi
            ]
        );
    }

    #[test]
    fn elementwise_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("H .* X ./ Y"),
            vec![
                Ident("H".into()),
                DotStar,
                Ident("X".into()),
                DotSlash,
                Ident("Y".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("2"), vec![TokenKind::Number(2.0)]);
        assert_eq!(kinds("0.5"), vec![TokenKind::Number(0.5)]);
        assert_eq!(kinds(".25"), vec![TokenKind::Number(0.25)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Number(1000.0)]);
        assert_eq!(kinds("2.5e-2"), vec![TokenKind::Number(0.025)]);
    }

    #[test]
    fn number_then_elementwise_op() {
        use TokenKind::*;
        // `2.*A` must lex as 2 .* A, not 2. * A.
        assert_eq!(kinds("2.*A"), vec![Number(2.0), DotStar, Ident("A".into())]);
        assert_eq!(
            kinds("2./A"),
            vec![Number(2.0), DotSlash, Ident("A".into())]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = tokenize("A = B; # trailing\n# full line\nC = D;").unwrap();
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[4].line, 3);
    }

    #[test]
    fn out_keyword_vs_ident() {
        use TokenKind::*;
        assert_eq!(kinds("out X"), vec![Out, Ident("X".into())]);
        assert_eq!(kinds("outX"), vec![Ident("outX".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("A @ B").is_err());
        assert!(tokenize("A / B").is_err());
        assert!(tokenize("A . B").is_err());
    }
}
