//! Property tests for the surface language: total functions (no panics on
//! arbitrary input) and semantic equivalence between scripted and
//! builder-built programs.

use std::collections::BTreeMap;

use cumulon_core::expr::InputDesc;
use cumulon_lang::{compile_source, parse, tokenize};
use cumulon_matrix::MatrixMeta;
use proptest::prelude::*;

proptest! {
    /// The lexer/parser/compiler never panic, whatever the input.
    #[test]
    fn frontend_is_total(src in ".{0,200}") {
        let _ = compile_source(&src); // may Err, must not panic
    }

    /// Structured garbage (valid tokens, random order) never panics.
    #[test]
    fn parser_total_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("A".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("*".to_string()),
                Just(".*".to_string()),
                Just("./".to_string()),
                Just("'".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just("out".to_string()),
                Just("2".to_string()),
            ],
            0..24,
        )
    ) {
        let src = words.join(" ");
        if let Ok(tokens) = tokenize(&src) {
            let _ = parse(&tokens); // may Err, must not panic
        }
    }

    /// Whitespace and comments never change the compiled program.
    #[test]
    fn whitespace_insensitive(extra_ws in 0usize..5) {
        let tight = "G=A'*A;S=G+0.5(G.*G);";
        let pad = " ".repeat(extra_ws + 1);
        let loose = format!(
            "G ={pad}A'{pad}* A ;{pad}# comment\nS = G +{pad}0.5 (G .* G) ;"
        );
        let a = compile_source(tight).unwrap();
        let b = compile_source(&loose).unwrap();
        prop_assert_eq!(a.program.nodes, b.program.nodes);
        prop_assert_eq!(a.program.outputs, b.program.outputs);
    }
}

/// A scripted GNMF H-update compiles to a program semantically equal (same
/// inference results) to the hand-built one.
#[test]
fn script_matches_builder_semantics() {
    let script =
        compile_source("WtV = W' * V;\nWtW = W' * W;\nH1 = H .* WtV ./ (WtW * H);").unwrap();

    let mut inputs = BTreeMap::new();
    inputs.insert(
        "V".to_string(),
        InputDesc::sparse(MatrixMeta::new(60, 40, 10), 0.1),
    );
    inputs.insert(
        "W".to_string(),
        InputDesc::dense(MatrixMeta::new(60, 5, 10)),
    );
    inputs.insert(
        "H".to_string(),
        InputDesc::dense(MatrixMeta::new(5, 40, 10)),
    );

    let info = script.program.infer(&inputs).unwrap();
    let (_, root) = &script.program.outputs[0];
    assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (5, 40));

    // Same number of multiply nodes as the hand-built version.
    use cumulon_core::expr::ExprNode;
    let muls = script
        .program
        .nodes
        .iter()
        .filter(|n| matches!(n, ExprNode::Mul(_, _)))
        .count();
    assert_eq!(muls, 3, "WᵀV, WᵀW, (WᵀW)H");
}
