//! Quick GEMM kernel shoot-out (streaming vs cache-blocked), printed as
//! a table. For statistically-rigorous numbers use `cargo bench` instead.

use cumulon::matrix::gen;
use cumulon::matrix::DenseTile;
use std::time::Instant;

fn main() {
    for n in [128usize, 256, 512, 1024] {
        let a = gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        let reps = (512 / n).max(1);
        let mut c = DenseTile::zeros(n, n);
        let t0 = Instant::now();
        for _ in 0..reps {
            DenseTile::gemm_acc_streaming(&mut c, &a, &b).unwrap();
        }
        let stream = t0.elapsed().as_secs_f64() / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            DenseTile::gemm_acc_blocked(&mut c, &a, &b).unwrap();
        }
        let blocked = t0.elapsed().as_secs_f64() / reps as f64;
        let gf = 2.0 * (n as f64).powi(3) / 1e9;
        println!(
            "n={n}: streaming {:.1}ms ({:.2} GF/s)  blocked {:.1}ms ({:.2} GF/s)  speedup {:.2}x",
            stream * 1e3,
            gf / stream,
            blocked * 1e3,
            gf / blocked,
            stream / blocked
        );
    }
}
