//! Quick GEMM kernel shoot-out (streaming vs cache-blocked vs packed
//! SIMD, per SIMD clone), printed as a table, followed by the small-size
//! dispatch-crossover table that justifies the `gemm_acc` threshold. For
//! statistically-rigorous numbers use `cargo bench` instead.

use cumulon::matrix::microkernel::{detected_simd_level, set_simd_override, SimdLevel};
use cumulon::matrix::{gen, set_kernel_threads, DenseTile};
use std::time::Instant;

fn time_gemm(
    f: impl Fn(&mut DenseTile, &DenseTile, &DenseTile),
    a: &DenseTile,
    b: &DenseTile,
    reps: usize,
) -> f64 {
    let mut c = DenseTile::zeros(a.rows(), b.cols());
    let t0 = Instant::now();
    for _ in 0..reps {
        f(&mut c, a, b);
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let detected = detected_simd_level();
    println!("detected SIMD level: {}", detected.name());
    println!("-- kernel shoot-out --");
    for n in [128usize, 192, 256, 512, 1024] {
        let a = gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        let reps = (1024 / n).max(1) * 2;
        let gf = 2.0 * (n as f64).powi(3) / 1e9;
        let stream = time_gemm(
            |c, a, b| DenseTile::gemm_acc_streaming(c, a, b).unwrap(),
            &a,
            &b,
            reps,
        );
        let blocked = time_gemm(
            |c, a, b| DenseTile::gemm_acc_blocked(c, a, b).unwrap(),
            &a,
            &b,
            reps,
        );
        print!(
            "n={n}: streaming {:.2} GF/s  blocked {:.2} GF/s",
            gf / stream,
            gf / blocked
        );
        for level in [SimdLevel::Generic, SimdLevel::Avx2Fma, SimdLevel::Avx512] {
            if level > detected {
                continue;
            }
            set_simd_override(Some(level));
            let packed = time_gemm(
                |c, a, b| DenseTile::gemm_acc_packed(c, a, b).unwrap(),
                &a,
                &b,
                reps,
            );
            print!("  packed[{}] {:.2} GF/s", level.name(), gf / packed);
        }
        set_simd_override(None);
        println!();
    }

    println!("-- intra-kernel threading (packed, detected clone) --");
    let n = 1024;
    let a = gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
    let b = gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
    let gf = 2.0 * (n as f64).powi(3) / 1e9;
    for threads in [1usize, 2, 4, 0] {
        set_kernel_threads(threads);
        let secs = time_gemm(
            |c, a, b| DenseTile::gemm_acc_packed(c, a, b).unwrap(),
            &a,
            &b,
            2,
        );
        println!("threads={threads}: {:.2} GF/s", gf / secs);
    }
    set_kernel_threads(1);

    println!("-- dispatch crossover (streaming vs packed) --");
    for n in [16usize, 24, 32, 48, 64, 96, 128] {
        let a = gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        let reps = (256 / n).max(1) * 64;
        let gf = 2.0 * (n as f64).powi(3) / 1e9;
        let stream = time_gemm(
            |c, a, b| DenseTile::gemm_acc_streaming(c, a, b).unwrap(),
            &a,
            &b,
            reps,
        );
        let packed = time_gemm(
            |c, a, b| DenseTile::gemm_acc_packed(c, a, b).unwrap(),
            &a,
            &b,
            reps,
        );
        println!(
            "n={n}: streaming {:.2} GF/s  packed {:.2} GF/s  ratio {:.2}x",
            gf / stream,
            gf / packed,
            stream / packed
        );
    }
}
