//! CI smoke and gate for `cumulon serve`: start the daemon on a loopback
//! port, hammer it with a scripted batch of concurrent TCP clients (each
//! mixing fast-lane `optimize` queries with full `run` executions), and
//! verify the service's two committed properties:
//!
//! * **fingerprint identity** — every concurrent client's run, and a
//!   serial replay of the same request sent afterwards, carries a
//!   fingerprint bitwise-identical to a direct single-threaded engine
//!   run of the same program (the `serve-isolation` contract over a
//!   real socket);
//! * **liveness** — the batch completes with non-zero request
//!   throughput and zero rejected requests.
//!
//! Emits `BENCH_serve.json` (machine-readable, uploaded by CI with
//! `if: always()`; experiment E21 in EXPERIMENTS.md) and prints a human
//! summary. Exit is non-zero on any violation.

use std::fmt::Write as _;
use std::time::Instant;

use cumulon::serve::engine;
use cumulon::serve::protocol::Request;
use cumulon::serve::quota::QuotaConfig;
use cumulon::serve::{Client, Server, ServiceConfig};
use cumulon::trace::json::JsonValue;

const CLIENTS: usize = 4;
/// `optimize` queries per client, interleaved before its run.
const OPTIMIZES_PER_CLIENT: usize = 2;

fn run_line(id: &str, tenant: &str) -> String {
    format!(
        "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\
         \"action\":\"run\",\"script\":\"G = A' * A;\",\"inputs\":[\"A=96x48:16\"],\
         \"instance\":\"m1.large\",\"nodes\":4,\"slots\":2}}"
    )
}

fn optimize_line(id: &str, tenant: &str) -> String {
    format!(
        "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\
         \"action\":\"optimize\",\"script\":\"G = A' * A;\",\
         \"inputs\":[\"A=2000x1000:200\"],\"deadline_s\":7200,\"max_nodes\":8}}"
    )
}

fn ok(v: &JsonValue) -> bool {
    v.get("ok").and_then(|x| x.as_bool()) == Some(true)
}

fn fingerprint(v: &JsonValue) -> Option<String> {
    v.get("fingerprint")
        .and_then(|x| x.as_str())
        .map(str::to_string)
}

fn main() {
    // Direct, serial, private-pool ground truth for the batch's program.
    let baseline_req = Request::parse(&run_line("base", "base")).expect("well-formed request");
    let baseline = engine::run(&baseline_req, 1, false)
        .expect("direct engine run")
        .report
        .fingerprint();

    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            run_workers: 2,
            threads: 2,
            queue_depth: 2 * CLIENTS,
            quota: QuotaConfig {
                capacity: 1e6,
                refill_per_s: 1e3,
                ..QuotaConfig::default()
            },
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let start = Instant::now();
    let results: Vec<(usize, Vec<String>)> = std::thread::scope(|s| {
        (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let tenant = format!("tenant-{c}");
                    let mut requests = 0usize;
                    let mut fps = Vec::new();
                    for i in 0..OPTIMIZES_PER_CLIENT {
                        let v = client
                            .request(&optimize_line(&format!("opt-{c}-{i}"), &tenant))
                            .expect("optimize response");
                        assert!(ok(&v), "optimize rejected: {v:?}");
                        requests += 1;
                    }
                    let v = client
                        .request(&run_line(&format!("run-{c}"), &tenant))
                        .expect("run response");
                    assert!(ok(&v), "run rejected: {v:?}");
                    fps.push(fingerprint(&v).expect("run reply carries fingerprint"));
                    requests += 1;
                    (requests, fps)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let batch_s = start.elapsed().as_secs_f64();

    // Serial replay over the same socket, after the concurrent batch.
    let mut replay_client = Client::connect(addr).expect("connect for replay");
    let replay = replay_client
        .request(&run_line("replay", "replay"))
        .expect("replay response");
    assert!(ok(&replay), "replay rejected: {replay:?}");
    let replay_fp = fingerprint(&replay).expect("replay carries fingerprint");
    server.stop();

    let requests: usize = results.iter().map(|(n, _)| n).sum::<usize>() + 1;
    let fps: Vec<&String> = results.iter().flat_map(|(_, f)| f).collect();
    let identical = fps.iter().all(|fp| **fp == baseline) && replay_fp == baseline;
    let throughput = requests as f64 / batch_s.max(1e-9);

    println!(
        "serve smoke: {CLIENTS} clients, {requests} requests in {:.1}ms \
         ({throughput:.1} req/s); fingerprints identical to serial engine \
         baseline: {identical}",
        batch_s * 1e3
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"clients\":{CLIENTS},\"requests\":{requests},\
         \"batch_seconds\":{batch_s:.6},\"req_per_s\":{throughput:.3},\
         \"runs\":{},\"fingerprint_identical\":{identical}}}",
        fps.len() + 1
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");

    if !identical {
        eprintln!(
            "FAIL: a concurrent tenant's fingerprint diverged from the serial \
             engine baseline — multi-tenancy is leaking into results"
        );
        std::process::exit(1);
    }
    if throughput <= 0.0 {
        eprintln!("FAIL: zero request throughput");
        std::process::exit(1);
    }
}
