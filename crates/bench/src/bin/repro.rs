//! `repro` — regenerates every table and figure of the reproduced
//! evaluation.
//!
//! ```sh
//! cargo run --release -p bench --bin repro                      # everything
//! cargo run --release -p bench --bin repro e2 e7 t1             # selected ids
//! cargo run --release -p bench --bin repro e18 --trace e18.json # + timeline
//! cargo run --release -p bench --bin repro e19 --spot-json BENCH_spot.json
//! ```

use bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        true
    } else {
        false
    };
    // --threads N: worker threads for Real-mode task compute (0 = all host
    // cores). Purely a wall-clock knob; results are identical at any count.
    let threads = if let Some(pos) = args.iter().position(|a| a == "--threads") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--threads needs an integer");
            std::process::exit(2);
        }
        match args.remove(pos).parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--threads needs an integer");
                std::process::exit(2);
            }
        }
    } else {
        0
    };
    // --trace FILE: export the Chrome trace_event timeline of the E18
    // Gram run (the traced experiment) alongside the tables.
    let trace_path = if let Some(pos) = args.iter().position(|a| a == "--trace") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--trace needs a file path");
            std::process::exit(2);
        }
        Some(args.remove(pos))
    } else {
        None
    };
    // --spot-json FILE: export the E19 expected-cost curve (spot vs
    // on-demand, with rework ratios) as machine-readable JSON.
    let spot_path = if let Some(pos) = args.iter().position(|a| a == "--spot-json") {
        args.remove(pos);
        if pos >= args.len() {
            eprintln!("--spot-json needs a file path");
            std::process::exit(2);
        }
        Some(args.remove(pos))
    } else {
        None
    };
    cumulon::cluster::set_default_threads(threads);
    let series = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::all()
    } else {
        let mut out = Vec::new();
        for id in &args {
            match experiments::by_id(id) {
                Some(s) => out.push(s),
                None => {
                    eprintln!(
                        "unknown experiment '{id}' (valid: e1..e22, t1..t4, all; add --json for machine-readable output)"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };
    if json {
        let items: Vec<String> = series.iter().map(experiments::Series::to_json).collect();
        println!("[{}]", items.join(","));
    } else {
        for s in series {
            println!("{}", s.render());
        }
    }
    if let Some(path) = spot_path {
        let series = experiments::e19();
        if let Err(e) = std::fs::write(&path, series.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("spot curve: {} rows -> {path}", series.rows.len());
    }
    if let Some(path) = trace_path {
        let (_, log) = experiments::e18_with_log();
        if let Err(e) = std::fs::write(&path, log.to_chrome_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "trace: {} spans -> {path} (load in Perfetto or chrome://tracing)",
            log.tasks.len()
        );
    }
}
