//! CI bench smoke and regression gate: GEMM kernel timings (the packed
//! production path vs the retired blocked reference, n=128..1024), a
//! parallel GEMM end-to-end row, and one end-to-end Real-mode run
//! executed at 1 worker thread and at N, verifying the two runs are
//! bitwise-identical and that the parallel executor clears committed
//! speed thresholds.
//!
//! Emits `BENCH_gemm.json`, `BENCH_e2e.json` and `BENCH_spill.json` in
//! the working directory (machine-readable), plus `BENCH_trace.json` —
//! the sequential run's Chrome trace_event timeline, loadable in
//! Perfetto — and prints a human summary. Exit is non-zero if:
//!
//! * the packed GEMM at n=1024 falls below [`MIN_GEMM_GFLOPS`] *and*
//!   below [`MIN_GEMM_SPEEDUP`]x the in-process reference kernel, on a
//!   host whose dense kernel dispatched to an FMA SIMD clone (soft
//!   warning on generic hosts, where the floor is unattainable; the
//!   ratio fallback keeps ambient VM contention — which slows both
//!   kernels alike — from tripping the gate);
//! * the parallel run diverges bitwise from the sequential one (any host);
//! * the e2e speedup at [`E2E_THREADS`] threads falls below
//!   [`MIN_SPEEDUP`] on a host with at least [`E2E_THREADS`] cores;
//! * the speedup falls below [`OVERHEAD_FLOOR`] on any host — parallel
//!   execution must never be materially slower than sequential (the
//!   regression class this gate exists for: the pre-lookahead executor
//!   ran at 0.49x on a single-core host);
//! * the e2e phase accounting identity `compute + read + write +
//!   startup + overhead + idle = makespan` drifts (the phases come from
//!   the traced run's critical path, wall-clock-attributed — *not*
//!   slot-seconds summed across idle speculative workers, which once
//!   reported 12.2 s of "overhead" on a 0.84 s run);
//! * an out-of-core run (same Gram workload under a resident-tile budget
//!   far below its working set) diverges bitwise from the unbounded run,
//!   fails to actually spill, or exceeds [`MAX_SPILL_SLOWDOWN`]x the
//!   unbounded wall time.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use cumulon::cluster::instances::catalog;
use cumulon::cluster::{
    set_default_threads, Cluster, ClusterSpec, ExecMode, FailurePlan, RunReport, SchedulerConfig,
    Trace, TraceLog,
};
use cumulon::core::calibrate::{CostModel, OpCoefficients};
use cumulon::core::{InputDesc, Optimizer, ProgramBuilder, RecoveryConfig};
use cumulon::dfs::DfsConfig;
use cumulon::matrix::gen::Generator;
use cumulon::matrix::{DenseTile, LocalMatrix, MatrixMeta, SimdLevel};

const E2E_THREADS: usize = 4;
/// Committed single-core floor for the packed GEMM at n=1024, ≥3x the
/// 7.8 GF/s the retired blocked kernel managed on the same host class.
/// Enforced only where the microkernel dispatched to an FMA SIMD clone;
/// the generic clone (no fused multiply-add) can't reach it.
const MIN_GEMM_GFLOPS: f64 = 23.0;
/// Fallback gate when ambient contention (VM steal, noisy neighbors)
/// slows the whole host below [`MIN_GEMM_GFLOPS`]: the packed kernel
/// must still beat the in-process reference measurement — taken under
/// the same conditions, so the ratio is contention-invariant — by this
/// factor. Missing *both* is a genuine kernel regression.
const MIN_GEMM_SPEEDUP: f64 = 3.0;
/// Committed e2e speedup floor at `E2E_THREADS` threads, enforced only on
/// hosts with at least that many cores (wall-clock parallel speedup is
/// unattainable on fewer).
const MIN_SPEEDUP: f64 = 1.5;
/// Committed overhead floor on hosts with at least [`E2E_THREADS`]
/// cores: the parallel executor may never run materially slower than the
/// sequential one.
const OVERHEAD_FLOOR: f64 = 0.8;
/// Overhead floor when the host has fewer cores than [`E2E_THREADS`]
/// (threads time-slice one core). Looser than [`OVERHEAD_FLOOR`]: the
/// packed SIMD kernels are cache-resident, so context switches between
/// oversubscribed workers evict each other's panels and cost up to ~25%
/// against the sequential run — physics, not executor overhead. Still
/// tight enough to catch the 0.49x regression class this gate exists for.
const OVERSUBSCRIBED_FLOOR: f64 = 0.65;
const META: MatrixMeta = MatrixMeta {
    rows: 1536,
    cols: 1536,
    tile_size: 256,
};
/// Resident-tile budgets for the out-of-core smoke. The Gram run writes
/// 36 output tiles of 512 KiB (~18 MB through the spill plane): 2 MiB
/// holds four of them, 512 KiB exactly one — every write evicts.
const SPILL_BUDGETS: [u64; 2] = [2 << 20, 512 << 10];
/// Budgets for the spill-aware-scheduling gate, ~4x and ~16x below the
/// fan workload's ~8 MiB working set (the product plus three consumer
/// outputs of 2 MiB each).
const PREFETCH_BUDGETS: [u64; 2] = [2 << 20, 512 << 10];
/// A budgeted run pays host-side codec and disk work the unbounded run
/// skips; this bounds how much. Generous because CI walls are noisy and
/// the runs are sub-second, but still low enough to catch a spill path
/// that re-encodes or re-reads tiles quadratically.
const MAX_SPILL_SLOWDOWN: f64 = 6.0;

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    gemm_smoke();
    e2e_smoke();
    spill_smoke();
}

/// Best-of-`reps` wall seconds for one `f(c, a, b)` call.
fn time_gemm(
    f: impl Fn(&mut DenseTile, &DenseTile, &DenseTile),
    a: &DenseTile,
    b: &DenseTile,
    reps: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut c = DenseTile::zeros(a.rows(), b.cols());
        let t0 = Instant::now();
        f(&mut c, a, b);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn gemm_smoke() {
    let simd = cumulon::matrix::simd_level();
    println!("dense microkernel dispatch: {}", simd.name());
    let mut json = String::from("[");
    let mut packed_1024_gflops = 0.0;
    let mut speedup_1024 = 0.0;
    for (i, n) in [128usize, 192, 256, 512, 1024].into_iter().enumerate() {
        let a = cumulon::matrix::gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = cumulon::matrix::gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        // Best-of-reps: CI hosts are noisy and the floor gate below must
        // not trip on a scheduler hiccup.
        let reps = (512 / n).max(3);
        let flops = 2.0 * (n as f64).powi(3);
        // The production dispatcher (packed SIMD path at these sizes).
        let secs = time_gemm(
            |c, a, b| DenseTile::gemm_acc(c, a, b).unwrap(),
            &a,
            &b,
            reps,
        );
        let gflops = flops / 1e9 / secs;
        // The seed's blocked kernel, kept as the comparison baseline.
        let ref_secs = time_gemm(
            |c, a, b| DenseTile::gemm_acc_blocked(c, a, b).unwrap(),
            &a,
            &b,
            reps.min(3),
        );
        let ref_gflops = flops / 1e9 / ref_secs;
        if n == 1024 {
            packed_1024_gflops = gflops;
            speedup_1024 = ref_secs / secs;
        }
        println!(
            "gemm n={n}: packed {:.1}ms ({gflops:.2} GF/s), reference {:.1}ms ({ref_gflops:.2} GF/s)",
            secs * 1e3,
            ref_secs * 1e3
        );
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"kernel\":\"gemm_packed\",\"n\":{n},\"simd\":\"{}\",\
             \"seconds\":{secs:.6},\"gflops\":{gflops:.3}}},\
             {{\"kernel\":\"gemm_blocked\",\"n\":{n},\
             \"seconds\":{ref_secs:.6},\"gflops\":{ref_gflops:.3}}}",
            simd.name()
        );
    }
    // Parallel-GEMM smoke: the same multiply driven through the cluster
    // executor with threads = 0 (all host cores), exercising the lookahead
    // pool end to end.
    let (secs, n) = gemm_parallel_e2e();
    let gflops = 2.0 * (n as f64).powi(3) / 1e9 / secs;
    println!(
        "gemm e2e n={n} threads=0: {:.1}ms ({gflops:.2} GF/s)",
        secs * 1e3
    );
    let _ = write!(
        json,
        ",{{\"kernel\":\"gemm_parallel_e2e\",\"n\":{n},\"threads\":0,\
         \"seconds\":{secs:.6},\"gflops\":{gflops:.3}}}"
    );
    json.push(']');
    std::fs::write("BENCH_gemm.json", json).expect("write BENCH_gemm.json");
    // Committed floor: the packed kernel must hold ≥3x the seed's rate at
    // n=1024 wherever the microkernel found an FMA SIMD clone to run.
    // When ambient contention drags the absolute number under the floor,
    // the contention-invariant speedup over the in-process reference
    // measurement must still hold — only missing both is a regression.
    if packed_1024_gflops < MIN_GEMM_GFLOPS {
        if simd == SimdLevel::Generic {
            println!(
                "warn: packed gemm n=1024 at {packed_1024_gflops:.2} GF/s below \
                 {MIN_GEMM_GFLOPS} floor — not enforced on generic (no-FMA) hosts"
            );
        } else if speedup_1024 >= MIN_GEMM_SPEEDUP {
            println!(
                "warn: packed gemm n=1024 at {packed_1024_gflops:.2} GF/s below the \
                 {MIN_GEMM_GFLOPS} floor, but {speedup_1024:.2}x the in-process \
                 reference — host contention, not a kernel regression"
            );
        } else {
            eprintln!(
                "GATE FAIL: packed gemm n=1024 at {packed_1024_gflops:.2} GF/s \
                 (floor {MIN_GEMM_GFLOPS} on {} hosts) and only {speedup_1024:.2}x \
                 the in-process reference (floor {MIN_GEMM_SPEEDUP}x)",
                simd.name()
            );
            std::process::exit(1);
        }
    }
}

/// One Real-mode C = A x B at 1024^2 (4x4 tile grid) on all host cores.
/// Returns (wall seconds, n).
fn gemm_parallel_e2e() -> (f64, usize) {
    const N: usize = 1024;
    set_default_threads(0);
    let meta = MatrixMeta {
        rows: N,
        cols: N,
        tile_size: 256,
    };
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    let store = cluster.store();
    store
        .register_generated("A", meta, Generator::DenseGaussian { seed: 11 })
        .unwrap();
    store
        .register_generated("B", meta, Generator::DenseGaussian { seed: 13 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let bb = b.input("B");
    let c = b.mul(a, bb);
    b.output("C", c);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    for name in ["A", "B"] {
        inputs.insert(
            name.to_string(),
            InputDesc {
                meta,
                density: 1.0,
                sparse: false,
                generated: true,
            },
        );
    }
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    let t0 = Instant::now();
    opt.execute_on(&cluster, &program, &inputs, "gemm_par", ExecMode::Real)
        .unwrap();
    (t0.elapsed().as_secs_f64(), N)
}

/// Run fingerprint: the canonical [`RunReport::fingerprint`] (shared with
/// `cumulon check`) plus the bit pattern of every output's norm.
fn fingerprint(report: &RunReport, outputs: &[LocalMatrix]) -> String {
    let mut s = report.fingerprint();
    for m in outputs {
        let _ = writeln!(s, "out {:016x}", m.frob_norm().to_bits());
    }
    s
}

fn e2e_once(threads: usize) -> (f64, String, LocalMatrix, TraceLog) {
    set_default_threads(threads);
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    cluster
        .store()
        .register_generated("A", META, Generator::DenseGaussian { seed: 7 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    b.output("G", g);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "A".to_string(),
        InputDesc {
            meta: META,
            density: 1.0,
            sparse: false,
            generated: true,
        },
    );
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    // Traced at every thread count: the fingerprint equality below doubles
    // as a check that recording spans never perturbs results.
    let trace = Trace::enabled();
    let t0 = Instant::now();
    let report = opt
        .execute_on_traced(
            &cluster,
            &program,
            &inputs,
            "smoke",
            ExecMode::Real,
            SchedulerConfig::default(),
            &FailurePlan::default(),
            RecoveryConfig::default(),
            &trace,
        )
        .unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let out = cluster.store().get_local("G").unwrap();
    let fp = fingerprint(&report, std::slice::from_ref(&out));
    (wall, fp, out, trace.snapshot().expect("trace enabled"))
}

fn e2e_smoke() {
    let cores = host_cores();
    // Two *paired* rounds of (sequential, parallel), gating on the best
    // per-round ratio: CI hosts see multi-second ambient contention
    // windows, and pairing keeps a window from slowing only one side of
    // the ratio (best-of-N per side, measured minutes apart, still
    // tripped the overhead gate on a noisy 1-core host). Each round also
    // re-asserts bitwise determinism against the first.
    let (mut seq_s, mut par_s, mut speedup) = (f64::INFINITY, f64::INFINITY, 0.0_f64);
    let mut kept: Option<(String, LocalMatrix, TraceLog, String, LocalMatrix)> = None;
    for _ in 0..2 {
        let (s_s, s_fp, s_out, s_log) = e2e_once(1);
        let (p_s, p_fp, p_out, _) = e2e_once(E2E_THREADS);
        speedup = speedup.max(s_s / p_s);
        seq_s = seq_s.min(s_s);
        par_s = par_s.min(p_s);
        match &kept {
            None => kept = Some((s_fp, s_out, s_log, p_fp, p_out)),
            Some((fp0, _, _, pfp0, _)) => {
                assert_eq!(fp0, &s_fp, "sequential e2e nondeterministic across rounds");
                assert_eq!(pfp0, &p_fp, "parallel e2e nondeterministic across rounds");
            }
        }
    }
    let (seq_fp, seq_out, seq_log, par_fp, par_out) = kept.expect("two rounds ran");
    let identical = seq_fp == par_fp && seq_out == par_out;
    println!(
        "e2e G=A'A {}x{} t{}: 1 thread {seq_s:.2}s, {E2E_THREADS} threads {par_s:.2}s \
         ({speedup:.2}x on {cores} core(s)), bitwise identical: {identical}",
        META.rows, META.cols, META.tile_size,
    );
    // The sequential run's timeline (deterministic span order at 1 thread).
    std::fs::write("BENCH_trace.json", seq_log.to_chrome_json()).expect("write BENCH_trace.json");
    // Phase attribution comes from the critical path, so the reported
    // seconds are wall-clock: phases + idle reproduce the makespan.
    // (`phase_totals()` sums slot-seconds across every worker — idle
    // speculative slots once inflated "overhead" to 14x the wall time.)
    // `phase_startup_s` is the fixed task-launch cost on the path, kept
    // out of `phase_overhead_s`: this one-wave plan's critical path is a
    // single task, so its constant ~2s launch once read as 66% executor
    // "overhead" on a 3.6s run.
    let cp = seq_log.critical_path();
    let accounting_drift = (cp.accounted_s() - cp.makespan_s).abs();
    let json = format!(
        "{{\"experiment\":\"e2e_gram_1536\",\"seq_seconds\":{seq_s:.4},\
         \"par_seconds\":{par_s:.4},\"threads\":{E2E_THREADS},\
         \"speedup\":{speedup:.3},\"host_cores\":{cores},\
         \"bitwise_identical\":{identical},\
         \"makespan_s\":{:.4},\
         \"phase_compute_s\":{:.4},\"phase_read_s\":{:.4},\
         \"phase_write_s\":{:.4},\"phase_startup_s\":{:.4},\
         \"phase_overhead_s\":{:.4},\"phase_idle_s\":{:.4}}}",
        cp.makespan_s,
        cp.phases.compute_s,
        cp.phases.read_s,
        cp.phases.write_s,
        cp.phases.startup_s,
        cp.phases.overhead_s,
        cp.idle_s,
    );
    std::fs::write("BENCH_e2e.json", json).expect("write BENCH_e2e.json");
    if accounting_drift > 1e-6 * cp.makespan_s.max(1.0) {
        eprintln!(
            "GATE FAIL: phase accounting identity broken: phases {:.6}s + idle {:.6}s \
             != makespan {:.6}s",
            cp.phases.total_s(),
            cp.idle_s,
            cp.makespan_s
        );
        std::process::exit(1);
    }
    if !identical {
        eprintln!("GATE FAIL: parallel run diverged from sequential run");
        eprintln!("--- sequential ---\n{seq_fp}\n--- parallel ---\n{par_fp}");
        std::process::exit(1);
    }
    let floor = if cores >= E2E_THREADS {
        OVERHEAD_FLOOR
    } else {
        OVERSUBSCRIBED_FLOOR
    };
    if speedup < floor {
        eprintln!(
            "GATE FAIL: parallel executor overhead: speedup {speedup:.3} \
             below floor {floor} (host has {cores} core(s))"
        );
        std::process::exit(1);
    }
    if cores >= E2E_THREADS && speedup < MIN_SPEEDUP {
        eprintln!(
            "GATE FAIL: e2e speedup {speedup:.3} below committed threshold \
             {MIN_SPEEDUP} at {E2E_THREADS} threads on {cores} cores"
        );
        std::process::exit(1);
    }
}

/// One Gram run at `E2E_THREADS` worker threads under a resident-tile
/// budget (0 = unbounded). `get_local` at the end drags every spilled
/// output tile back through the blob store, so the wall time prices the
/// full evict/readmit round trip. Returns (wall seconds, fingerprint,
/// spill counters).
fn spill_once(budget: u64) -> (f64, String, Option<cumulon::dfs::SpillStats>) {
    set_default_threads(E2E_THREADS);
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    if budget > 0 {
        cluster
            .store()
            .set_memory_budget(&cumulon::dfs::SpillConfig::budgeted(budget))
            .unwrap();
    }
    cluster
        .store()
        .register_generated("A", META, Generator::DenseGaussian { seed: 7 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    b.output("G", g);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "A".to_string(),
        InputDesc {
            meta: META,
            density: 1.0,
            sparse: false,
            generated: true,
        },
    );
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    let t0 = Instant::now();
    let report = opt
        .execute_on(&cluster, &program, &inputs, "spill", ExecMode::Real)
        .unwrap();
    let out = cluster.store().get_local("G").unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let fp = fingerprint(&report, std::slice::from_ref(&out));
    (wall, fp, cluster.store().dfs().spill_stats())
}

/// Out-of-core gate: the same Gram workload under budgets ~9x and ~36x
/// below its working set must reproduce the unbounded run bitwise (the
/// spill plane costs zero *simulated* time by construction), must
/// actually evict (a zero counter would make the gate vacuous), and may
/// not blow the wall-clock slowdown bound.
fn spill_smoke() {
    let (base_s, base_fp, base_stats) = spill_once(0);
    assert!(
        base_stats.is_none(),
        "no spill plane expected without a budget"
    );
    let mut rows = String::new();
    let mut failed = false;
    for (i, budget) in SPILL_BUDGETS.into_iter().enumerate() {
        let (wall, fp, stats) = spill_once(budget);
        let stats = stats.expect("budgeted run installs a spill plane");
        let identical = fp == base_fp;
        let slowdown = wall / base_s;
        let ratio = stats.blob.compression_ratio();
        println!(
            "spill budget {} KiB: {wall:.2}s ({slowdown:.2}x unbounded {base_s:.2}s), \
             {} eviction(s), {} readmission(s), {} B spilled ({ratio:.2}x compression), \
             {} B read back, bitwise identical: {identical}",
            budget >> 10,
            stats.evictions,
            stats.readmissions,
            stats.spilled_bytes_total,
            stats.readback_bytes_total,
        );
        if i > 0 {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "{{\"budget_bytes\":{budget},\"wall_seconds\":{wall:.4},\
             \"slowdown\":{slowdown:.3},\"bitwise_identical\":{identical},\
             \"evictions\":{},\"readmissions\":{},\"spilled_bytes\":{},\
             \"readback_bytes\":{},\"readback_bytes_avoided\":{},\
             \"compression_ratio\":{ratio:.4},\
             \"blob_segments\":{}}}",
            stats.evictions,
            stats.readmissions,
            stats.spilled_bytes_total,
            stats.readback_bytes_total,
            stats.readback_bytes_avoided,
            stats.blob.segments,
        );
        if !identical {
            eprintln!("GATE FAIL: {budget} B budget run diverged from unbounded run");
            failed = true;
        }
        if stats.evictions == 0 || stats.spilled_bytes_total == 0 {
            eprintln!(
                "GATE FAIL: {budget} B budget never spilled \
                 ({} evictions, {} B) — the gate is vacuous",
                stats.evictions, stats.spilled_bytes_total
            );
            failed = true;
        }
        if slowdown > MAX_SPILL_SLOWDOWN {
            eprintln!(
                "GATE FAIL: {budget} B budget ran {slowdown:.2}x the unbounded wall \
                 (bound {MAX_SPILL_SLOWDOWN}x)"
            );
            failed = true;
        }
    }
    let (prefetch_json, prefetch_failed) = prefetch_smoke();
    let json = format!(
        "{{\"experiment\":\"spill_gram_1536\",\"threads\":{E2E_THREADS},\
         \"unbounded_seconds\":{base_s:.4},\"runs\":[{rows}],\
         \"prefetch\":{prefetch_json}}}"
    );
    std::fs::write("BENCH_spill.json", json).expect("write BENCH_spill.json");
    if failed || prefetch_failed {
        std::process::exit(1);
    }
}

/// One fan-out run (GEMM feeding three element-wise consumers of the
/// product) at `E2E_THREADS` threads under a resident-tile budget, with
/// spill-aware scheduling at `depth` (0 = off). Spill counters are
/// snapshotted *before* the result readback: `get_local` drags spilled
/// tiles back synchronously no matter what the scheduler did, so only
/// in-run traffic is comparable. The fingerprint covers the readback
/// too (re-admission correctness).
fn prefetch_once(budget: u64, depth: usize) -> (String, cumulon::dfs::SpillStats) {
    set_default_threads(E2E_THREADS);
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    cluster
        .store()
        .set_memory_budget(&cumulon::dfs::SpillConfig::budgeted(budget))
        .unwrap();
    let meta = MatrixMeta {
        rows: 512,
        cols: 512,
        tile_size: 64,
    };
    let mut inputs = BTreeMap::new();
    for (name, seed) in [("A", 3), ("B", 5)] {
        cluster
            .store()
            .register_generated(name, meta, Generator::DenseGaussian { seed })
            .unwrap();
        inputs.insert(
            name.to_string(),
            InputDesc {
                meta,
                density: 1.0,
                sparse: false,
                generated: true,
            },
        );
    }
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let bb = b.input("B");
    let c = b.mul(a, bb);
    let p = b.add(c, a);
    b.output("P", p);
    let q = b.sub(c, bb);
    b.output("Q", q);
    let r = b.scale(c, 0.5);
    b.output("R", r);
    let program = b.build();
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    let mut config = SchedulerConfig::default().with_threads(E2E_THREADS);
    if depth > 0 {
        config = config.with_prefetch(depth);
    }
    let report = opt
        .execute_on_traced(
            &cluster,
            &program,
            &inputs,
            "prefetch",
            ExecMode::Real,
            config,
            &FailurePlan::default(),
            RecoveryConfig::default(),
            &Trace::disabled(),
        )
        .unwrap();
    let stats = cluster
        .store()
        .dfs()
        .spill_stats()
        .expect("budgeted run installs a spill plane");
    let out = cluster.store().get_local("P").unwrap();
    let fp = fingerprint(&report, std::slice::from_ref(&out));
    (fp, stats)
}

/// Spill-aware scheduling gate: the fan workload with prefetch on must
/// reproduce the prefetch-off run bitwise, must actually overlap
/// readbacks (zero avoided bytes would make the gate vacuous), and at
/// the friendlier budget must cut synchronous readbacks by >= 30%. The
/// tighter budget is report-only: with a resident set this small the
/// prefetcher's byte cap throttles it to a couple of tiles per fill,
/// and how much that saves is workload noise, not a commitment.
fn prefetch_smoke() -> (String, bool) {
    const DEPTH: usize = 16;
    const MIN_REDUCTION: f64 = 0.30;
    let mut rows = String::new();
    let mut failed = false;
    for (i, budget) in PREFETCH_BUDGETS.into_iter().enumerate() {
        let (fp_off, off) = prefetch_once(budget, 0);
        let (fp_on, on) = prefetch_once(budget, DEPTH);
        let identical = fp_on == fp_off;
        let sync_on = on.readback_bytes_total - on.readback_bytes_avoided;
        let reduction = 1.0 - sync_on as f64 / off.readback_bytes_total.max(1) as f64;
        println!(
            "prefetch budget {} KiB (depth {DEPTH}): {} tile(s) readmitted ahead of demand, \
             {} B sync readback vs {} B without prefetch ({:.0}% reduction), \
             bitwise identical: {identical}",
            budget >> 10,
            on.prefetched_files,
            sync_on,
            off.readback_bytes_total,
            100.0 * reduction,
        );
        if i > 0 {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "{{\"budget_bytes\":{budget},\"bitwise_identical\":{identical},\
             \"prefetched_files\":{},\"readback_bytes_avoided\":{},\
             \"sync_readback_bytes\":{sync_on},\"readback_bytes_off\":{},\
             \"sync_reduction\":{reduction:.4}}}",
            on.prefetched_files, on.readback_bytes_avoided, off.readback_bytes_total,
        );
        if !identical {
            eprintln!("GATE FAIL: {budget} B budget prefetch run diverged from prefetch-off run");
            failed = true;
        }
        if on.prefetched_files == 0 || on.readback_bytes_avoided == 0 {
            eprintln!(
                "GATE FAIL: {budget} B budget never prefetched \
                 ({} files, {} B avoided) — the gate is vacuous",
                on.prefetched_files, on.readback_bytes_avoided
            );
            failed = true;
        }
        if i == 0 && reduction < MIN_REDUCTION {
            eprintln!(
                "GATE FAIL: {budget} B budget cut sync readbacks {:.0}% \
                 (committed floor {:.0}%)",
                100.0 * reduction,
                100.0 * MIN_REDUCTION
            );
            failed = true;
        }
    }
    (
        format!(
            "{{\"experiment\":\"prefetch_fan_512\",\"threads\":{E2E_THREADS},\
             \"depth\":{DEPTH},\"runs\":[{rows}]}}"
        ),
        failed,
    )
}
