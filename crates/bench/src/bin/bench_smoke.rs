//! CI bench smoke and regression gate: GEMM kernel timings, a parallel
//! GEMM end-to-end row, and one end-to-end Real-mode run executed at 1
//! worker thread and at N, verifying the two runs are bitwise-identical
//! and that the parallel executor clears committed speed thresholds.
//!
//! Emits `BENCH_gemm.json` and `BENCH_e2e.json` in the working directory
//! (machine-readable), plus `BENCH_trace.json` — the sequential run's
//! Chrome trace_event timeline, loadable in Perfetto — and prints a
//! human summary. Exit is non-zero if:
//!
//! * the parallel run diverges bitwise from the sequential one (any host);
//! * the e2e speedup at [`E2E_THREADS`] threads falls below
//!   [`MIN_SPEEDUP`] on a host with at least [`E2E_THREADS`] cores;
//! * the speedup falls below [`OVERHEAD_FLOOR`] on any host — parallel
//!   execution must never be materially slower than sequential (the
//!   regression class this gate exists for: the pre-lookahead executor
//!   ran at 0.49x on a single-core host).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use cumulon::cluster::instances::catalog;
use cumulon::cluster::{
    set_default_threads, Cluster, ClusterSpec, ExecMode, FailurePlan, RunReport, SchedulerConfig,
    Trace, TraceLog,
};
use cumulon::core::calibrate::{CostModel, OpCoefficients};
use cumulon::core::{InputDesc, Optimizer, ProgramBuilder, RecoveryConfig};
use cumulon::dfs::DfsConfig;
use cumulon::matrix::gen::Generator;
use cumulon::matrix::{DenseTile, LocalMatrix, MatrixMeta};

const E2E_THREADS: usize = 4;
/// Committed e2e speedup floor at `E2E_THREADS` threads, enforced only on
/// hosts with at least that many cores (wall-clock parallel speedup is
/// unattainable on fewer).
const MIN_SPEEDUP: f64 = 1.5;
/// Committed overhead floor on any host: the parallel executor may never
/// run materially slower than the sequential one.
const OVERHEAD_FLOOR: f64 = 0.8;
const META: MatrixMeta = MatrixMeta {
    rows: 1536,
    cols: 1536,
    tile_size: 256,
};

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    gemm_smoke();
    e2e_smoke();
}

fn gemm_smoke() {
    let mut json = String::from("[");
    for (i, n) in [256usize, 512, 1024].into_iter().enumerate() {
        let a = cumulon::matrix::gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = cumulon::matrix::gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        let mut c = DenseTile::zeros(n, n);
        let reps = (1024 / n).max(1);
        let t0 = Instant::now();
        for _ in 0..reps {
            DenseTile::gemm_acc_blocked(&mut c, &a, &b).unwrap();
        }
        let secs = t0.elapsed().as_secs_f64() / reps as f64;
        let gflops = 2.0 * (n as f64).powi(3) / 1e9 / secs;
        println!("gemm n={n}: {:.1}ms ({gflops:.2} GF/s)", secs * 1e3);
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"kernel\":\"gemm_blocked\",\"n\":{n},\"seconds\":{secs:.6},\"gflops\":{gflops:.3}}}"
        );
    }
    // Parallel-GEMM smoke: the same multiply driven through the cluster
    // executor with threads = 0 (all host cores), exercising the lookahead
    // pool end to end.
    let (secs, n) = gemm_parallel_e2e();
    let gflops = 2.0 * (n as f64).powi(3) / 1e9 / secs;
    println!(
        "gemm e2e n={n} threads=0: {:.1}ms ({gflops:.2} GF/s)",
        secs * 1e3
    );
    let _ = write!(
        json,
        ",{{\"kernel\":\"gemm_parallel_e2e\",\"n\":{n},\"threads\":0,\
         \"seconds\":{secs:.6},\"gflops\":{gflops:.3}}}"
    );
    json.push(']');
    std::fs::write("BENCH_gemm.json", json).expect("write BENCH_gemm.json");
}

/// One Real-mode C = A x B at 1024^2 (4x4 tile grid) on all host cores.
/// Returns (wall seconds, n).
fn gemm_parallel_e2e() -> (f64, usize) {
    const N: usize = 1024;
    set_default_threads(0);
    let meta = MatrixMeta {
        rows: N,
        cols: N,
        tile_size: 256,
    };
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    let store = cluster.store();
    store
        .register_generated("A", meta, Generator::DenseGaussian { seed: 11 })
        .unwrap();
    store
        .register_generated("B", meta, Generator::DenseGaussian { seed: 13 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let bb = b.input("B");
    let c = b.mul(a, bb);
    b.output("C", c);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    for name in ["A", "B"] {
        inputs.insert(
            name.to_string(),
            InputDesc {
                meta,
                density: 1.0,
                sparse: false,
                generated: true,
            },
        );
    }
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    let t0 = Instant::now();
    opt.execute_on(&cluster, &program, &inputs, "gemm_par", ExecMode::Real)
        .unwrap();
    (t0.elapsed().as_secs_f64(), N)
}

/// Run fingerprint: the canonical [`RunReport::fingerprint`] (shared with
/// `cumulon check`) plus the bit pattern of every output's norm.
fn fingerprint(report: &RunReport, outputs: &[LocalMatrix]) -> String {
    let mut s = report.fingerprint();
    for m in outputs {
        let _ = writeln!(s, "out {:016x}", m.frob_norm().to_bits());
    }
    s
}

fn e2e_once(threads: usize) -> (f64, String, LocalMatrix, TraceLog) {
    set_default_threads(threads);
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    cluster
        .store()
        .register_generated("A", META, Generator::DenseGaussian { seed: 7 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    b.output("G", g);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "A".to_string(),
        InputDesc {
            meta: META,
            density: 1.0,
            sparse: false,
            generated: true,
        },
    );
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    // Traced at every thread count: the fingerprint equality below doubles
    // as a check that recording spans never perturbs results.
    let trace = Trace::enabled();
    let t0 = Instant::now();
    let report = opt
        .execute_on_traced(
            &cluster,
            &program,
            &inputs,
            "smoke",
            ExecMode::Real,
            SchedulerConfig::default(),
            &FailurePlan::default(),
            RecoveryConfig::default(),
            &trace,
        )
        .unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let out = cluster.store().get_local("G").unwrap();
    let fp = fingerprint(&report, std::slice::from_ref(&out));
    (wall, fp, out, trace.snapshot().expect("trace enabled"))
}

fn e2e_smoke() {
    let cores = host_cores();
    let (seq_s, seq_fp, seq_out, seq_log) = e2e_once(1);
    let (par_s, par_fp, par_out, _par_log) = e2e_once(E2E_THREADS);
    let identical = seq_fp == par_fp && seq_out == par_out;
    let speedup = seq_s / par_s;
    println!(
        "e2e G=A'A {}x{} t{}: 1 thread {seq_s:.2}s, {E2E_THREADS} threads {par_s:.2}s \
         ({speedup:.2}x on {cores} core(s)), bitwise identical: {identical}",
        META.rows, META.cols, META.tile_size,
    );
    // The sequential run's timeline (deterministic span order at 1 thread).
    std::fs::write("BENCH_trace.json", seq_log.to_chrome_json()).expect("write BENCH_trace.json");
    let phases = seq_log.phase_totals();
    let json = format!(
        "{{\"experiment\":\"e2e_gram_1536\",\"seq_seconds\":{seq_s:.4},\
         \"par_seconds\":{par_s:.4},\"threads\":{E2E_THREADS},\
         \"speedup\":{speedup:.3},\"host_cores\":{cores},\
         \"bitwise_identical\":{identical},\
         \"phase_compute_s\":{:.4},\"phase_read_s\":{:.4},\
         \"phase_write_s\":{:.4},\"phase_overhead_s\":{:.4}}}",
        phases.compute_s, phases.read_s, phases.write_s, phases.overhead_s,
    );
    std::fs::write("BENCH_e2e.json", json).expect("write BENCH_e2e.json");
    if !identical {
        eprintln!("GATE FAIL: parallel run diverged from sequential run");
        eprintln!("--- sequential ---\n{seq_fp}\n--- parallel ---\n{par_fp}");
        std::process::exit(1);
    }
    if speedup < OVERHEAD_FLOOR {
        eprintln!(
            "GATE FAIL: parallel executor overhead: speedup {speedup:.3} \
             below floor {OVERHEAD_FLOOR} (host has {cores} core(s))"
        );
        std::process::exit(1);
    }
    if cores >= E2E_THREADS && speedup < MIN_SPEEDUP {
        eprintln!(
            "GATE FAIL: e2e speedup {speedup:.3} below committed threshold \
             {MIN_SPEEDUP} at {E2E_THREADS} threads on {cores} cores"
        );
        std::process::exit(1);
    }
}
