//! CI bench smoke: a quick GEMM kernel timing plus one end-to-end
//! Real-mode run executed at 1 worker thread and at N, verifying the two
//! runs are bitwise-identical while the parallel one is faster.
//!
//! Emits `BENCH_gemm.json` and `BENCH_e2e.json` in the working directory
//! (machine-readable, one object per line) and prints a human summary.
//! Exits non-zero if the parallel run diverges from the sequential one.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use cumulon::cluster::instances::catalog;
use cumulon::cluster::{set_default_threads, Cluster, ClusterSpec, ExecMode, RunReport};
use cumulon::core::calibrate::{CostModel, OpCoefficients};
use cumulon::core::{InputDesc, Optimizer, ProgramBuilder};
use cumulon::dfs::DfsConfig;
use cumulon::matrix::gen::Generator;
use cumulon::matrix::{DenseTile, LocalMatrix, MatrixMeta};

const E2E_THREADS: usize = 4;
const META: MatrixMeta = MatrixMeta {
    rows: 1536,
    cols: 1536,
    tile_size: 256,
};

fn main() {
    gemm_smoke();
    e2e_smoke();
}

fn gemm_smoke() {
    let mut json = String::from("[");
    for (i, n) in [256usize, 512].into_iter().enumerate() {
        let a = cumulon::matrix::gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = cumulon::matrix::gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        let mut c = DenseTile::zeros(n, n);
        let reps = (1024 / n).max(1);
        let t0 = Instant::now();
        for _ in 0..reps {
            DenseTile::gemm_acc_blocked(&mut c, &a, &b).unwrap();
        }
        let secs = t0.elapsed().as_secs_f64() / reps as f64;
        let gflops = 2.0 * (n as f64).powi(3) / 1e9 / secs;
        println!("gemm n={n}: {:.1}ms ({gflops:.2} GF/s)", secs * 1e3);
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"kernel\":\"gemm_blocked\",\"n\":{n},\"seconds\":{secs:.6},\"gflops\":{gflops:.3}}}"
        );
    }
    json.push(']');
    std::fs::write("BENCH_gemm.json", json).expect("write BENCH_gemm.json");
}

/// Canonical fingerprint of a run: every float by bit pattern, every
/// counter verbatim. Two runs match iff their fingerprints are equal.
fn fingerprint(report: &RunReport, outputs: &[LocalMatrix]) -> String {
    let mut s = format!(
        "mk{:016x} bh{:016x} $ {:016x} {:?}\n",
        report.makespan_s.to_bits(),
        report.billed_hours.to_bits(),
        report.cost_dollars.to_bits(),
        report.faults,
    );
    for j in &report.jobs {
        let _ = write!(
            s,
            "{} [{:016x}-{:016x}] r({:016x},{},{},{:016x},{:016x},{})",
            j.name,
            j.start_s.to_bits(),
            j.end_s.to_bits(),
            j.receipt.work.flops.to_bits(),
            j.receipt.read.bytes,
            j.receipt.write.bytes,
            j.receipt.mem_mb.to_bits(),
            j.receipt.fixed_s.to_bits(),
            j.receipt.io_ops,
        );
        for t in &j.tasks {
            let _ = write!(
                s,
                " {}@{}[{:016x}-{:016x}]x{}",
                t.task,
                t.node,
                t.start_s.to_bits(),
                t.end_s.to_bits(),
                t.attempts
            );
        }
        s.push('\n');
    }
    for m in outputs {
        let _ = writeln!(s, "out {:016x}", m.frob_norm().to_bits());
    }
    s
}

fn e2e_once(threads: usize) -> (f64, String, LocalMatrix) {
    set_default_threads(threads);
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 4, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    cluster
        .store()
        .register_generated("A", META, Generator::DenseGaussian { seed: 7 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    b.output("G", g);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "A".to_string(),
        InputDesc {
            meta: META,
            density: 1.0,
            sparse: false,
            generated: true,
        },
    );
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let opt = Optimizer::new(model);
    let t0 = Instant::now();
    let report = opt
        .execute_on(&cluster, &program, &inputs, "smoke", ExecMode::Real)
        .unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let out = cluster.store().get_local("G").unwrap();
    let fp = fingerprint(&report, std::slice::from_ref(&out));
    (wall, fp, out)
}

fn e2e_smoke() {
    let (seq_s, seq_fp, seq_out) = e2e_once(1);
    let (par_s, par_fp, par_out) = e2e_once(E2E_THREADS);
    let identical = seq_fp == par_fp && seq_out == par_out;
    let speedup = seq_s / par_s;
    println!(
        "e2e G=A'A {}x{} t{}: 1 thread {seq_s:.2}s, {E2E_THREADS} threads {par_s:.2}s \
         ({speedup:.2}x), bitwise identical: {identical}",
        META.rows, META.cols, META.tile_size,
    );
    let json = format!(
        "{{\"experiment\":\"e2e_gram_1536\",\"seq_seconds\":{seq_s:.4},\
         \"par_seconds\":{par_s:.4},\"threads\":{E2E_THREADS},\
         \"speedup\":{speedup:.3},\"bitwise_identical\":{identical}}}"
    );
    std::fs::write("BENCH_e2e.json", json).expect("write BENCH_e2e.json");
    if !identical {
        eprintln!("PARALLEL RUN DIVERGED FROM SEQUENTIAL RUN");
        eprintln!("--- sequential ---\n{seq_fp}\n--- parallel ---\n{par_fp}");
        std::process::exit(1);
    }
}
