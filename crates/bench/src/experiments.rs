//! The experiment suite (E1–E10, T1–T4) reconstructed from the paper's
//! abstract and public narrative; see DESIGN.md for the index and
//! EXPERIMENTS.md for expected-vs-measured shapes.
//!
//! Every experiment returns a [`Series`] — a named table of rows — so the
//! `repro` binary, the criterion benches and the documentation all consume
//! the same code path. Experiments run in *simulated* (phantom) mode at
//! paper scale: real tile math is covered by the test suites at small
//! scale; here the subject is time-and-dollars behaviour.

use std::collections::BTreeMap;

use cumulon::core::calibrate::{calibrate, CalibrationConfig};
use cumulon::core::lower::{build_plan, instantiate, FixedSplit};
use cumulon::core::physical::MulSplit;
use cumulon::matrix::tile::ElemOp;
use cumulon::prelude::*;
use cumulon::workloads::gnmf::Gnmf;
use cumulon::workloads::rsvd::Rsvd;

/// A printable experiment result: header plus rows.
#[derive(Debug, Clone)]
pub struct Series {
    /// Experiment id, e.g. `"E2"`.
    pub id: &'static str,
    /// What the experiment shows.
    pub title: &'static str,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Series {
    fn new(id: &'static str, title: &'static str, header: &[&str]) -> Self {
        Series {
            id,
            title,
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders as a JSON object (hand-rolled; the only JSON this repo
    /// emits, so a serializer dependency isn't warranted).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let header = self
            .header
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect::<Vec<_>>()
            .join(",");
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let cells = r
                    .iter()
                    .map(|c| format!("\"{}\"", esc(c)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("[{cells}]")
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":[{header}],\"rows\":[{rows}]}}",
            esc(self.id),
            esc(self.title)
        )
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn optimizer() -> Optimizer {
    Optimizer::new(idealized_cost_model())
}

fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn square_multiply(n: usize) -> (Program, BTreeMap<String, InputDesc>, MatrixMeta) {
    let meta = MatrixMeta::new(n, n, 1_000);
    let mut pb = ProgramBuilder::new();
    let a = pb.input("A");
    let b = pb.input("B");
    let m = pb.mul(a, b);
    pb.output("C", m);
    let mut inputs = BTreeMap::new();
    inputs.insert("A".to_string(), InputDesc::dense(meta).generated());
    inputs.insert("B".to_string(), InputDesc::dense(meta).generated());
    (pb.build(), inputs, meta)
}

fn provision_with_gen(
    instance: &str,
    nodes: u32,
    slots: u32,
    meta: MatrixMeta,
    names: &[&str],
) -> Cluster {
    let cluster =
        Cluster::provision(ClusterSpec::named(instance, nodes, slots).unwrap()).expect("provision");
    for (i, name) in names.iter().enumerate() {
        cluster
            .store()
            .register_generated(name, meta, Generator::DenseGaussian { seed: i as u64 + 1 })
            .expect("register");
    }
    cluster
}

// ---------------------------------------------------------------------------
// E1: multiply split sweep
// ---------------------------------------------------------------------------

/// E1 — job time vs. the multiply split choice is U-shaped; the cost-based
/// chooser lands near the bottom.
pub fn e1() -> Series {
    let mut s = Series::new(
        "E1",
        "multiply job time vs split (16k x 16k x 16k, c1.xlarge x10, 8 slots)",
        &["ri", "rj", "rk", "tasks", "sim time (s)", "chosen"],
    );
    let (program, inputs, meta) = square_multiply(16_000);
    let opt = optimizer();

    // Which split does the cost-based chooser pick?
    let cluster = provision_with_gen("c1.xlarge", 10, 8, meta, &["A", "B"]);
    let est_plan = {
        let coeffs = *opt.model().for_instance("c1.xlarge").unwrap();
        let view = cumulon::core::estimate::ClusterView {
            instance: cumulon::cluster::instances::by_name("c1.xlarge").unwrap(),
            nodes: 10,
            slots: 8,
            replication: 3,
        };
        let chooser = cumulon::core::deploy::CostBasedChooser { coeffs, view };
        build_plan(&program, &inputs, &chooser, "pick").unwrap()
    };
    let chosen = match &est_plan.jobs[0] {
        cumulon::core::physical::PhysJob::Mul { split, .. } => *split,
        _ => MulSplit::unit(),
    };

    for (ri, rj, rk) in [
        (1usize, 1usize, 1usize),
        (1, 1, 4),
        (1, 1, 16),
        (2, 2, 4),
        (2, 2, 16),
        (4, 4, 4),
        (4, 4, 16),
        (8, 8, 16),
        (16, 16, 16),
    ] {
        let split = MulSplit { ri, rj, rk };
        let cluster = provision_with_gen("c1.xlarge", 10, 8, meta, &["A", "B"]);
        let plan = build_plan(&program, &inputs, &FixedSplit(split, 4), "t").unwrap();
        let dag = instantiate(&plan, cluster.store()).unwrap();
        let report = cluster.run(&dag, ExecMode::Simulated).unwrap();
        let tasks = plan.jobs.iter().map(|j| j.task_count()).sum::<usize>();
        s.push(vec![
            ri.to_string(),
            rj.to_string(),
            rk.to_string(),
            tasks.to_string(),
            f(report.makespan_s),
            if split == chosen {
                "<-- optimizer".into()
            } else {
                String::new()
            },
        ]);
    }
    // Run the optimizer's own choice too (may coincide with a row above).
    let dag = instantiate(&est_plan, cluster.store()).unwrap();
    let report = cluster.run(&dag, ExecMode::Simulated).unwrap();
    s.push(vec![
        chosen.ri.to_string(),
        chosen.rj.to_string(),
        chosen.rk.to_string(),
        est_plan
            .jobs
            .iter()
            .map(|j| j.task_count())
            .sum::<usize>()
            .to_string(),
        f(report.makespan_s),
        "(optimizer's pick)".into(),
    ]);
    s
}

// ---------------------------------------------------------------------------
// E2: Cumulon vs MapReduce baseline, dimension sweep
// ---------------------------------------------------------------------------

/// E2 — Cumulon vs the SystemML-on-MapReduce-style baseline on square
/// multiply, growing dimension.
pub fn e2() -> Series {
    let mut s = Series::new(
        "E2",
        "dense multiply: Cumulon vs MapReduce baseline (c1.xlarge x8, 8 slots)",
        &["n", "cumulon (s)", "mapreduce (s)", "speedup"],
    );
    let opt = optimizer();
    for n in [4_000usize, 8_000, 12_000, 16_000, 20_000] {
        let (program, inputs, meta) = square_multiply(n);
        let cluster = provision_with_gen("c1.xlarge", 8, 8, meta, &["A", "B"]);
        let cumulon_s = opt
            .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
            .unwrap()
            .makespan_s;

        let spec = ClusterSpec::named("c1.xlarge", 8, 8).unwrap();
        let store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
        for (i, name) in ["A", "B"].iter().enumerate() {
            store
                .register_generated(name, meta, Generator::DenseGaussian { seed: i as u64 + 1 })
                .unwrap();
        }
        let engine = MrEngine::new(spec, store, HardwareModel::default(), MrConfig::default());
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "A".into(),
            b: "B".into(),
            out: "C".into(),
            strategy: MulStrategy::Auto,
        });
        let mr_s = prog
            .execute(&engine, ExecMode::Simulated)
            .unwrap()
            .makespan_s;
        s.push(vec![
            n.to_string(),
            f(cumulon_s),
            f(mr_s),
            format!("{:.1}x", mr_s / cumulon_s),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E3: GNMF iteration vs cluster size, Cumulon vs baseline
// ---------------------------------------------------------------------------

/// The baseline H-update as an operator-at-a-time MR program.
fn mr_gnmf_h_update(engine: &MrEngine, suffix: &str) -> f64 {
    let prog = MrProgram::new()
        .push(MrOp::Transpose {
            a: "W_0".into(),
            out: format!("Wt{suffix}"),
        })
        .push(MrOp::Mul {
            a: format!("Wt{suffix}"),
            b: "V".into(),
            out: format!("WtV{suffix}"),
            strategy: MulStrategy::Auto,
        })
        .push(MrOp::Mul {
            a: format!("Wt{suffix}"),
            b: "W_0".into(),
            out: format!("WtW{suffix}"),
            strategy: MulStrategy::Auto,
        })
        .push(MrOp::Mul {
            a: format!("WtW{suffix}"),
            b: "H_0".into(),
            out: format!("WtWH{suffix}"),
            strategy: MulStrategy::Auto,
        })
        .push(MrOp::Elementwise {
            a: "H_0".into(),
            b: format!("WtV{suffix}"),
            out: format!("Hnum{suffix}"),
            op: ElemOp::Mul,
        })
        .push(MrOp::Elementwise {
            a: format!("Hnum{suffix}"),
            b: format!("WtWH{suffix}"),
            out: format!("Hnext{suffix}"),
            op: ElemOp::Div,
        });
    prog.execute(engine, ExecMode::Simulated)
        .unwrap()
        .makespan_s
}

/// E3 — GNMF per-iteration time vs cluster size, Cumulon vs baseline.
pub fn e3() -> Series {
    let mut s = Series::new(
        "E3",
        "GNMF per-iteration time vs nodes (V: 100k x 100k @1%, rank 50, m1.xlarge)",
        &["nodes", "cumulon (s)", "mapreduce (s)", "speedup"],
    );
    let gnmf = Gnmf {
        m: 100_000,
        n: 100_000,
        rank: 50,
        tile_size: 1_000,
        density: 0.01,
        seed: 5,
    };
    let opt = optimizer();
    for nodes in [5u32, 10, 20, 40] {
        let cluster =
            Cluster::provision(ClusterSpec::named("m1.xlarge", nodes, 4).unwrap()).unwrap();
        gnmf.setup(cluster.store()).unwrap();
        let reports = gnmf.run(&opt, &cluster, 1, ExecMode::Simulated).unwrap();
        let cumulon_s = reports[0].makespan_s;

        let spec = ClusterSpec::named("m1.xlarge", nodes, 4).unwrap();
        let store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
        gnmf.setup(&store).unwrap();
        let engine = MrEngine::new(spec, store, HardwareModel::default(), MrConfig::default());
        // One baseline iteration ≈ 2 × the H-update (the W-update is the
        // mirror image with the same operator count).
        let mr_s = 2.0 * mr_gnmf_h_update(&engine, &format!("_{nodes}"));
        s.push(vec![
            nodes.to_string(),
            f(cumulon_s),
            f(mr_s),
            format!("{:.1}x", mr_s / cumulon_s),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E4: RSVD scale-out
// ---------------------------------------------------------------------------

/// E4 — RSVD-1 end-to-end time vs cluster size (diminishing returns as the
/// wave count bottoms out).
pub fn e4() -> Series {
    let mut s = Series::new(
        "E4",
        "RSVD-1 (A: 400k x 200k, k=100) makespan vs nodes (c1.xlarge, 8 slots)",
        &["nodes", "makespan (s)", "cost ($)", "speedup vs 5"],
    );
    let rsvd = Rsvd {
        m: 400_000,
        n: 200_000,
        k: 100,
        tile_size: 1_000,
        power_iters: 0,
        seed: 9,
    };
    let opt = optimizer();
    let mut base = None;
    for nodes in [5u32, 10, 20, 40, 80] {
        let cluster =
            Cluster::provision(ClusterSpec::named("c1.xlarge", nodes, 8).unwrap()).unwrap();
        rsvd.setup(cluster.store()).unwrap();
        let reports = rsvd.run(&opt, &cluster, ExecMode::Simulated).unwrap();
        let total: f64 = reports.iter().map(|r| r.makespan_s).sum();
        let cost: f64 = reports.iter().map(|r| r.cost_dollars).sum();
        let base_t = *base.get_or_insert(total);
        s.push(vec![
            nodes.to_string(),
            f(total),
            format!("{cost:.2}"),
            format!("{:.1}x", base_t / total),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E5: prediction accuracy
// ---------------------------------------------------------------------------

/// E5 — estimator vs simulator across workloads and deployments.
pub fn e5() -> Series {
    let mut s = Series::new(
        "E5",
        "predicted vs simulated makespan",
        &[
            "workload",
            "deployment",
            "predicted (s)",
            "simulated (s)",
            "rel err",
        ],
    );
    let opt = optimizer();

    let mut record = |workload: &str,
                      instance: &str,
                      nodes: u32,
                      slots: u32,
                      program: &Program,
                      inputs: &BTreeMap<String, InputDesc>,
                      cluster: &Cluster| {
        let est = opt.estimate_on(cluster, program, inputs).unwrap();
        let run = opt
            .execute_on(cluster, program, inputs, "e5", ExecMode::Simulated)
            .unwrap();
        let rel = (est.makespan_s - run.makespan_s).abs() / run.makespan_s;
        s.push(vec![
            workload.to_string(),
            format!("{instance} x{nodes}/{slots}"),
            f(est.makespan_s),
            f(run.makespan_s),
            format!("{:.1}%", 100.0 * rel),
        ]);
    };

    for (instance, nodes, slots) in [("m1.large", 8u32, 2u32), ("c1.xlarge", 4, 8)] {
        let (program, inputs, meta) = square_multiply(10_000);
        let cluster = provision_with_gen(instance, nodes, slots, meta, &["A", "B"]);
        record(
            "multiply-10k",
            instance,
            nodes,
            slots,
            &program,
            &inputs,
            &cluster,
        );
    }

    let gnmf = Gnmf {
        m: 20_000,
        n: 20_000,
        rank: 20,
        tile_size: 1_000,
        density: 0.01,
        seed: 5,
    };
    for (instance, nodes, slots) in [("m1.xlarge", 10u32, 4u32), ("c1.xlarge", 6, 8)] {
        let cluster =
            Cluster::provision(ClusterSpec::named(instance, nodes, slots).unwrap()).unwrap();
        gnmf.setup(cluster.store()).unwrap();
        let program = cumulon::workloads::Workload::program(&gnmf, 0);
        let inputs = cumulon::workloads::Workload::inputs(&gnmf, 0);
        record(
            "gnmf-iter",
            instance,
            nodes,
            slots,
            &program,
            &inputs,
            &cluster,
        );
    }

    let rsvd = Rsvd {
        m: 30_000,
        n: 15_000,
        k: 50,
        tile_size: 1_000,
        power_iters: 0,
        seed: 2,
    };
    let (instance, nodes, slots) = ("m2.2xlarge", 8u32, 4u32);
    let cluster = Cluster::provision(ClusterSpec::named(instance, nodes, slots).unwrap()).unwrap();
    rsvd.setup(cluster.store()).unwrap();
    let program = cumulon::workloads::Workload::program(&rsvd, 0);
    let inputs = cumulon::workloads::Workload::inputs(&rsvd, 0);
    record(
        "rsvd-sketch",
        instance,
        nodes,
        slots,
        &program,
        &inputs,
        &cluster,
    );
    s
}

// ---------------------------------------------------------------------------
// E6: slots-per-node sweep
// ---------------------------------------------------------------------------

/// E6 — the configuration knob: slots per node has an interior optimum.
pub fn e6() -> Series {
    let mut s = Series::new(
        "E6",
        "multiply time vs slots/node (12k^3, c1.medium x16: 2 cores, 1.7GB)",
        &["slots", "sim time (s)", "note"],
    );
    let (program, inputs, meta) = square_multiply(12_000);
    let opt = optimizer();
    let mut best: Option<(u32, f64)> = None;
    let mut rows = Vec::new();
    for slots in [1u32, 2, 3, 4, 6, 8] {
        let cluster = provision_with_gen("c1.medium", 16, slots, meta, &["A", "B"]);
        let t = opt
            .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
            .unwrap()
            .makespan_s;
        if best.map(|(_, bt)| t < bt).unwrap_or(true) {
            best = Some((slots, t));
        }
        rows.push((slots, t));
    }
    let (best_slots, _) = best.unwrap();
    for (slots, t) in rows {
        s.push(vec![
            slots.to_string(),
            f(t),
            if slots == best_slots {
                "<-- best".into()
            } else {
                String::new()
            },
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E7: cost vs deadline
// ---------------------------------------------------------------------------

/// E7 — the minimal cost to meet each deadline, and which deployment wins.
pub fn e7() -> Series {
    let mut s = Series::new(
        "E7",
        "min cost vs deadline (RSVD sketch, A: 400k x 200k, k=200)",
        &["deadline (min)", "cost ($)", "deployment"],
    );
    let rsvd = Rsvd {
        m: 400_000,
        n: 200_000,
        k: 200,
        tile_size: 1_000,
        power_iters: 0,
        seed: 9,
    };
    let program = cumulon::workloads::Workload::program(&rsvd, 0);
    let inputs = cumulon::workloads::Workload::inputs(&rsvd, 0);
    let opt = optimizer();
    let space = SearchSpace {
        max_nodes: 48,
        node_stride: 2,
        ..Default::default()
    };
    for deadline_min in [480.0, 240.0, 120.0, 60.0, 30.0, 15.0, 8.0, 4.0] {
        match opt.optimize(
            &program,
            &inputs,
            space.clone(),
            Constraint::Deadline(deadline_min * 60.0),
        ) {
            Ok(plan) => s.push(vec![
                format!("{deadline_min:.0}"),
                format!("{:.2}", plan.estimate.cost_dollars),
                format!(
                    "{} x{} ({} slots), est {:.0}s",
                    plan.instance.name, plan.nodes, plan.slots, plan.estimate.makespan_s
                ),
            ]),
            Err(_) => s.push(vec![
                format!("{deadline_min:.0}"),
                "-".into(),
                "infeasible".into(),
            ]),
        }
    }
    s
}

// ---------------------------------------------------------------------------
// E8: Pareto skyline
// ---------------------------------------------------------------------------

/// E8 — the (time, cost) skyline over the deployment grid.
pub fn e8() -> Series {
    let mut s = Series::new(
        "E8",
        "time/cost Pareto skyline (GNMF iteration, V: 200k x 200k @1%, rank 50)",
        &["time (s)", "cost ($)", "deployment"],
    );
    let gnmf = Gnmf {
        m: 200_000,
        n: 200_000,
        rank: 50,
        tile_size: 1_000,
        density: 0.01,
        seed: 5,
    };
    let program = cumulon::workloads::Workload::program(&gnmf, 0);
    let inputs = cumulon::workloads::Workload::inputs(&gnmf, 0);
    let opt = optimizer();
    let space = SearchSpace {
        max_nodes: 32,
        node_stride: 4,
        ..Default::default()
    };
    let skyline = opt.pareto(&program, &inputs, space).unwrap();
    for d in skyline {
        s.push(vec![
            f(d.estimate.makespan_s),
            format!("{:.2}", d.estimate.cost_dollars),
            format!("{} x{} ({} slots)", d.instance.name, d.nodes, d.slots),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E9: chain reordering ablation
// ---------------------------------------------------------------------------

/// E9 — simulated time of a skewed 5-factor chain under three association
/// orders: naive left-assoc, flops-DP, and worst-case right-assoc.
pub fn e9() -> Series {
    let mut s = Series::new(
        "E9",
        "chain-order ablation (200 x 8k x 200 x 8k x 200 x 200 chain, m1.xlarge x8)",
        &["order", "jobs", "sim time (s)"],
    );
    let dims = [200usize, 8_000, 200, 8_000, 200, 200];
    let metas: Vec<MatrixMeta> = (0..5)
        .map(|i| MatrixMeta::new(dims[i], dims[i + 1], 200))
        .collect();
    let inputs: BTreeMap<String, InputDesc> = (0..5)
        .map(|i| (format!("M{i}"), InputDesc::dense(metas[i]).generated()))
        .collect();

    let build = |right_assoc: bool| {
        let mut pb = ProgramBuilder::new();
        let ids: Vec<_> = (0..5).map(|i| pb.input(&format!("M{i}"))).collect();
        let root = if right_assoc {
            let mut acc = ids[4];
            for &m in ids[..4].iter().rev() {
                acc = pb.mul(m, acc);
            }
            acc
        } else {
            pb.mul_chain(&ids)
        };
        pb.output("OUT", root);
        pb.build()
    };

    let opt = optimizer();
    let run = |program: &Program, rewrite: bool| {
        let cluster = Cluster::provision(ClusterSpec::named("m1.xlarge", 8, 4).unwrap()).unwrap();
        for (i, meta) in metas.iter().enumerate() {
            cluster
                .store()
                .register_generated(
                    &format!("M{i}"),
                    *meta,
                    Generator::DenseGaussian { seed: i as u64 },
                )
                .unwrap();
        }
        // Bypass or use the rewriter depending on the ablation arm.
        if rewrite {
            let report = opt
                .execute_on(&cluster, program, &inputs, "t", ExecMode::Simulated)
                .unwrap();
            (report.jobs.len(), report.makespan_s)
        } else {
            let plan =
                build_plan(program, &inputs, &cumulon::core::lower::UnitSplits, "t").unwrap();
            let dag = instantiate(&plan, cluster.store()).unwrap();
            let report = cluster.run(&dag, ExecMode::Simulated).unwrap();
            (report.jobs.len(), report.makespan_s)
        }
    };

    let (jobs, t) = run(&build(false), false);
    s.push(vec!["left-assoc (naive)".into(), jobs.to_string(), f(t)]);
    let (jobs, t) = run(&build(true), false);
    s.push(vec!["right-assoc (worst)".into(), jobs.to_string(), f(t)]);
    let (jobs, t) = run(&build(false), true);
    s.push(vec!["cost-based DP".into(), jobs.to_string(), f(t)]);
    s
}

// ---------------------------------------------------------------------------
// E10: budget-constrained best time + hourly billing structure
// ---------------------------------------------------------------------------

/// E10 — fastest deployment within each budget; hourly billing makes
/// marginal dollars buy whole steps of speed.
pub fn e10() -> Series {
    let mut s = Series::new(
        "E10",
        "best time vs budget (multiply 20k^3)",
        &["budget ($)", "time (s)", "cost ($)", "deployment"],
    );
    let (program, inputs, _) = square_multiply(20_000);
    let opt = optimizer();
    let space = SearchSpace {
        max_nodes: 48,
        node_stride: 2,
        ..Default::default()
    };
    for budget in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        match opt.optimize(&program, &inputs, space.clone(), Constraint::Budget(budget)) {
            Ok(plan) => s.push(vec![
                format!("{budget:.0}"),
                f(plan.estimate.makespan_s),
                format!("{:.2}", plan.estimate.cost_dollars),
                format!(
                    "{} x{} ({} slots)",
                    plan.instance.name, plan.nodes, plan.slots
                ),
            ]),
            Err(_) => s.push(vec![
                format!("{budget:.0}"),
                "-".into(),
                "-".into(),
                "infeasible".into(),
            ]),
        }
    }
    s
}

// ---------------------------------------------------------------------------
// E11: fault tolerance and speculative execution
// ---------------------------------------------------------------------------

/// E11 — makespan under injected failures and with speculative execution
/// (extension: the execution-model robustness the paper's substrate,
/// Hadoop, provides and our engine reproduces).
pub fn e11() -> Series {
    use cumulon::cluster::scheduler::{FailurePlan, SchedulerConfig};

    let mut s = Series::new(
        "E11",
        "fault tolerance (multiply 12k^3, m1.xlarge x8, 4 slots)",
        &["scenario", "sim time (s)", "retries", "overhead"],
    );
    let (program, inputs, meta) = square_multiply(12_000);
    let run = |failures: FailurePlan, config: SchedulerConfig, sigma: f64| {
        let hw = HardwareModel {
            noise: cumulon::cluster::hw::NoiseModel {
                sigma,
                seed: 0xfa11,
            },
            ..HardwareModel::default()
        };
        let cluster = Cluster::provision_with(
            ClusterSpec::named("m1.xlarge", 8, 4).unwrap(),
            hw,
            DfsConfig::default(),
        )
        .unwrap();
        for (i, name) in ["A", "B"].iter().enumerate() {
            cluster
                .store()
                .register_generated(name, meta, Generator::DenseGaussian { seed: i as u64 + 1 })
                .unwrap();
        }
        let plan = build_plan(&program, &inputs, &cumulon::core::lower::UnitSplits, "t").unwrap();
        let dag = instantiate(&plan, cluster.store()).unwrap();
        let report = cluster
            .run_with(&dag, ExecMode::Simulated, config, &failures)
            .unwrap();
        let retries: u32 = report.jobs.iter().map(|j| j.retries()).sum();
        (report.makespan_s, retries)
    };

    let base_sigma = 0.08;
    let (base, _) = run(
        FailurePlan::default(),
        SchedulerConfig::default(),
        base_sigma,
    );
    let mut row = |name: &str, t: f64, retries: u32, base: f64| {
        s.push(vec![
            name.to_string(),
            f(t),
            retries.to_string(),
            format!("{:+.0}%", 100.0 * (t / base - 1.0)),
        ]);
    };
    row("no failures", base, 0, base);
    for p in [0.05, 0.15] {
        // Enough retry headroom that even an unlucky task (all-failing
        // draws) completes: the experiment measures retry overhead, not
        // the give-up threshold.
        let config = SchedulerConfig {
            max_attempts: 10,
            ..SchedulerConfig::default()
        };
        let (t, r) = run(
            FailurePlan {
                task_failure_prob: p,
                seed: 7,
                ..Default::default()
            },
            config,
            base_sigma,
        );
        row(&format!("task failures p={p}"), t, r, base);
    }
    let (t, r) = run(
        FailurePlan {
            node_failures: vec![(base / 2.0, 7)],
            seed: 7,
            ..Default::default()
        },
        SchedulerConfig::default(),
        base_sigma,
    );
    row("node 7 dies mid-run", t, r, base);
    // Straggler-heavy environment, with and without speculation.
    let (t_heavy, _) = run(FailurePlan::default(), SchedulerConfig::default(), 0.8);
    row("heavy stragglers (sigma=0.8)", t_heavy, 0, t_heavy);
    let (t_spec, _) = run(
        FailurePlan::default(),
        SchedulerConfig::with_speculation(),
        0.8,
    );
    row("  + speculative execution", t_spec, 0, t_heavy);
    s
}

// ---------------------------------------------------------------------------
// E12: tile-size sweep (physical design knob)
// ---------------------------------------------------------------------------

/// E12 — the tile-size physical design knob: small tiles drown in per-task
/// overhead and tiny kernels; huge tiles starve parallelism and blow the
/// memory budget.
pub fn e12() -> Series {
    let mut s = Series::new(
        "E12",
        "multiply time vs tile size (16k^3, c1.xlarge x8, 8 slots)",
        &["tile size", "tiles", "sim time (s)"],
    );
    let opt = optimizer();
    for tile in [250usize, 500, 1_000, 2_000, 4_000] {
        let meta = MatrixMeta::new(16_000, 16_000, tile);
        let mut pb = ProgramBuilder::new();
        let a = pb.input("A");
        let b = pb.input("B");
        let m = pb.mul(a, b);
        pb.output("C", m);
        let program = pb.build();
        let mut inputs = BTreeMap::new();
        inputs.insert("A".to_string(), InputDesc::dense(meta).generated());
        inputs.insert("B".to_string(), InputDesc::dense(meta).generated());
        let cluster = provision_with_gen("c1.xlarge", 8, 8, meta, &["A", "B"]);
        let t = opt
            .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
            .unwrap()
            .makespan_s;
        s.push(vec![tile.to_string(), meta.tile_count().to_string(), f(t)]);
    }
    s
}

// ---------------------------------------------------------------------------
// E13: billing-policy ablation
// ---------------------------------------------------------------------------

/// E13 — hourly vs per-second billing changes what the optimizer buys:
/// hour-quantization rewards "fill the hour" deployments; per-second
/// pricing smooths the curve.
pub fn e13() -> Series {
    let mut s = Series::new(
        "E13",
        "min cost vs deadline under hourly vs per-second billing (RSVD sketch)",
        &[
            "deadline (min)",
            "hourly $ (deployment)",
            "per-second $ (deployment)",
        ],
    );
    let rsvd = Rsvd {
        m: 400_000,
        n: 200_000,
        k: 200,
        tile_size: 1_000,
        power_iters: 0,
        seed: 9,
    };
    let program = cumulon::workloads::Workload::program(&rsvd, 0);
    let inputs = cumulon::workloads::Workload::inputs(&rsvd, 0);
    let opt = optimizer();
    for deadline_min in [120.0, 60.0, 30.0, 15.0] {
        let cell = |billing| {
            let space = SearchSpace {
                max_nodes: 48,
                node_stride: 2,
                billing,
                ..Default::default()
            };
            match opt.optimize(
                &program,
                &inputs,
                space,
                Constraint::Deadline(deadline_min * 60.0),
            ) {
                Ok(p) => format!(
                    "{:.2} ({} x{})",
                    p.estimate.cost_dollars, p.instance.name, p.nodes
                ),
                Err(_) => "infeasible".to_string(),
            }
        };
        let hourly = cell(BillingPolicy::HourlyCeil);
        let per_second = cell(BillingPolicy::PerSecond);
        s.push(vec![format!("{deadline_min:.0}"), hourly, per_second]);
    }
    s
}

// ---------------------------------------------------------------------------
// E14: fusion ablation
// ---------------------------------------------------------------------------

/// E14 — value of fusing element-wise chains into single jobs (one of the
/// execution-model advantages over operator-at-a-time engines).
pub fn e14() -> Series {
    use cumulon::core::lower::{build_plan_with, PlanOptions};

    let mut s = Series::new(
        "E14",
        "GNMF iteration with and without element-wise fusion (m1.xlarge x10)",
        &["plan", "jobs", "sim time (s)"],
    );
    let gnmf = Gnmf {
        m: 100_000,
        n: 100_000,
        rank: 50,
        tile_size: 1_000,
        density: 0.01,
        seed: 5,
    };
    let program = cumulon::workloads::Workload::program(&gnmf, 0);
    let inputs = cumulon::workloads::Workload::inputs(&gnmf, 0);
    let opt = optimizer();
    for fuse in [true, false] {
        let cluster = Cluster::provision(ClusterSpec::named("m1.xlarge", 10, 4).unwrap()).unwrap();
        gnmf.setup(cluster.store()).unwrap();
        let view = cumulon::core::estimate::ClusterView {
            instance: cumulon::cluster::instances::by_name("m1.xlarge").unwrap(),
            nodes: 10,
            slots: 4,
            replication: 3,
        };
        let chooser = cumulon::core::deploy::CostBasedChooser {
            coeffs: *opt.model().for_instance("m1.xlarge").unwrap(),
            view,
        };
        let plan = build_plan_with(&program, &inputs, &chooser, "t", PlanOptions { fuse }).unwrap();
        let dag = instantiate(&plan, cluster.store()).unwrap();
        let report = cluster.run(&dag, ExecMode::Simulated).unwrap();
        s.push(vec![
            if fuse {
                "fused (Cumulon)"
            } else {
                "unfused (op-at-a-time)"
            }
            .to_string(),
            plan.jobs.len().to_string(),
            f(report.makespan_s),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E15: job-time predictor comparison (wave model vs Monte-Carlo)
// ---------------------------------------------------------------------------

/// E15 — the paper's "simulation" technique: Monte-Carlo list-scheduling
/// simulation vs the closed-form wave model, compared against the DES
/// ground truth across straggler regimes.
pub fn e15() -> Series {
    use cumulon::core::estimate::{job_time_mc, job_time_s};
    use cumulon::core::lower::UnitSplits;

    let mut s = Series::new(
        "E15",
        "job-time prediction: wave model vs Monte-Carlo simulation (multiply 10k^3)",
        &[
            "sigma",
            "DES actual (s)",
            "wave model (s)",
            "MC sim (s)",
            "wave err",
            "MC err",
        ],
    );
    let (program, inputs, meta) = square_multiply(10_000);
    for sigma in [0.0, 0.08, 0.3, 0.6] {
        let hw = HardwareModel {
            noise: cumulon::cluster::hw::NoiseModel { sigma, seed: 0xe15 },
            ..HardwareModel::default()
        };
        let cluster = Cluster::provision_with(
            ClusterSpec::named("m1.large", 6, 2).unwrap(),
            hw,
            DfsConfig::default(),
        )
        .unwrap();
        for (i, name) in ["A", "B"].iter().enumerate() {
            cluster
                .store()
                .register_generated(name, meta, Generator::DenseGaussian { seed: i as u64 + 1 })
                .unwrap();
        }
        let plan = build_plan(&program, &inputs, &UnitSplits, "t").unwrap();
        let dag = instantiate(&plan, cluster.store()).unwrap();
        let report = cluster.run(&dag, ExecMode::Simulated).unwrap();
        let actual = report.makespan_s;
        // Use the run's own mean task time so only the *scheduling* model
        // differs between predictors.
        let job = &report.jobs[0];
        let mean = job.mean_task_s();
        let n = job.tasks.len();
        let wave = job_time_s(mean, n, 12, sigma);
        let mc = job_time_mc(mean, n, 12, sigma, 7, 300);
        s.push(vec![
            format!("{sigma}"),
            f(actual),
            f(wave),
            f(mc),
            format!("{:+.0}%", 100.0 * (wave / actual - 1.0)),
            format!("{:+.0}%", 100.0 * (mc / actual - 1.0)),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E16: replication-factor configuration knob
// ---------------------------------------------------------------------------

/// E16 — HDFS replication: higher factors cost write bandwidth but buy
/// read locality (and fault tolerance); the optimizer's view models both.
pub fn e16() -> Series {
    let mut s = Series::new(
        "E16",
        "replication factor: multiply 12k^3 on m1.xlarge x8 (4 slots)",
        &[
            "replication",
            "sim time (s)",
            "write GB (physical)",
            "local read %",
        ],
    );
    let (program, mut inputs, meta) = square_multiply(12_000);
    // Inputs are *stored* matrices here (not generator-backed): reads must
    // exercise replication-dependent locality.
    for desc in inputs.values_mut() {
        desc.generated = false;
    }
    let opt = optimizer();
    for replication in [1usize, 2, 3, 5] {
        let spec = ClusterSpec::named("m1.xlarge", 8, 4).unwrap();
        let cluster = Cluster::provision_with(
            spec,
            HardwareModel::default(),
            DfsConfig {
                replication,
                ..Default::default()
            },
        )
        .unwrap();
        // Store A and B as real *written* matrices in phantom form, so
        // reads actually exercise replication-dependent locality.
        for (i, name) in ["A", "B"].iter().enumerate() {
            cluster.store().register(name, meta).unwrap();
            for (ti, tj) in meta.grid().iter() {
                let (r, c) = meta.tile_dims(ti, tj);
                let tile = cumulon::matrix::Tile::phantom_dense(r, c);
                let writer = cumulon::dfs::dfs::NodeId(((ti * 7 + tj * 3 + i) % 8) as u32);
                cluster
                    .store()
                    .write_tile(name, ti, tj, &tile, Some(writer))
                    .unwrap();
            }
        }
        let report = opt
            .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
            .unwrap();
        let write_bytes: u64 = report
            .jobs
            .iter()
            .map(|j| j.receipt.write.local_bytes + j.receipt.write.remote_bytes)
            .sum();
        let (lr, rr) = report.jobs.iter().fold((0u64, 0u64), |(l, r), j| {
            (
                l + j.receipt.read.local_bytes,
                r + j.receipt.read.remote_bytes,
            )
        });
        s.push(vec![
            replication.to_string(),
            f(report.makespan_s),
            format!("{:.1}", write_bytes as f64 / 1e9),
            format!("{:.0}%", 100.0 * lr as f64 / (lr + rr).max(1) as f64),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E17: lineage-recovery overhead under mid-run node failure
// ---------------------------------------------------------------------------

/// E17 — fault recovery: a node dies mid-run at replication 1, taking its
/// intermediate tiles with it; lineage re-runs just the producing tasks of
/// the lost tiles. Overhead over the failure-free run is the price paid,
/// swept over when in the run the node dies.
pub fn e17() -> Series {
    use cumulon::cluster::{FailurePlan, SchedulerConfig};
    use cumulon::core::RecoveryConfig;

    let mut s = Series::new(
        "E17",
        "lineage recovery: (A*B)*C 8k^3 on m1.large x8, node killed mid-run (repl 1)",
        &[
            "kill at",
            "time (s)",
            "overhead",
            "node deaths",
            "lost blocks",
            "recovered jobs",
        ],
    );
    // A two-job multiply chain: the first job's output is the intermediate
    // whose loss forces partial re-execution up the lineage.
    let meta = MatrixMeta::new(8_000, 8_000, 1_000);
    let mut pb = ProgramBuilder::new();
    let a = pb.input("A");
    let b = pb.input("B");
    let c = pb.input("C");
    let ab = pb.mul(a, b);
    let abc = pb.mul(ab, c);
    pb.output("D", abc);
    let program = pb.build();
    let mut inputs = BTreeMap::new();
    for name in ["A", "B", "C"] {
        inputs.insert(name.to_string(), InputDesc::dense(meta).generated());
    }
    // Replication 1, generator-backed inputs: a death loses *only*
    // intermediates (source tiles re-synthesize on read), so every run is
    // recoverable and the overhead isolates re-execution cost.
    let provision = || {
        let spec = ClusterSpec::named("m1.large", 8, 2).unwrap();
        let cluster = Cluster::provision_with(
            spec,
            HardwareModel::default(),
            DfsConfig {
                replication: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, name) in ["A", "B", "C"].iter().enumerate() {
            cluster
                .store()
                .register_generated(name, meta, Generator::DenseGaussian { seed: i as u64 + 1 })
                .unwrap();
        }
        cluster
    };
    let opt = optimizer();
    let clean = opt
        .execute_on(&provision(), &program, &inputs, "t", ExecMode::Simulated)
        .unwrap();
    s.push(vec![
        "(none)".to_string(),
        f(clean.makespan_s),
        "+0%".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
    ]);
    for frac in [0.25, 0.5, 0.75, 0.9] {
        let cluster = provision();
        let failures = FailurePlan {
            node_failures: vec![(clean.makespan_s * frac, 1)],
            ..Default::default()
        };
        let report = opt
            .execute_on_with(
                &cluster,
                &program,
                &inputs,
                "t",
                ExecMode::Simulated,
                SchedulerConfig::default(),
                &failures,
                RecoveryConfig::default(),
            )
            .unwrap();
        s.push(vec![
            format!("{:.0}%", 100.0 * frac),
            f(report.makespan_s),
            format!(
                "{:+.0}%",
                100.0 * (report.makespan_s / clean.makespan_s - 1.0)
            ),
            report.faults.node_deaths.to_string(),
            report.faults.lost_block_events.to_string(),
            report.faults.recovered_jobs.to_string(),
        ]);
    }
    s
}

/// E18 — where the time goes: critical-path phase attribution of the
/// Gram-matrix program (G = AᵀA), from a span-level trace of the run,
/// with the optimizer's analytic per-phase prediction alongside.
pub fn e18() -> Series {
    e18_with_log().0
}

/// The traced run behind [`e18`], also returning the raw trace log so
/// `repro --trace FILE` can export the timeline JSON of the same run the
/// table was computed from.
pub fn e18_with_log() -> (Series, cumulon::cluster::TraceLog) {
    use cumulon::cluster::{FailurePlan, SchedulerConfig, Trace};
    use cumulon::core::RecoveryConfig;

    let mut s = Series::new(
        "E18",
        "critical-path attribution: G = A'A 20000x4000 on m1.large x8 (traced run)",
        &[
            "phase",
            "critical path (s)",
            "% makespan",
            "predicted (task-s)",
            "actual (task-s)",
        ],
    );
    let meta = MatrixMeta::new(20_000, 4_000, 1_000);
    let mut pb = ProgramBuilder::new();
    let a = pb.input("A");
    let at = pb.transpose(a);
    let g = pb.mul(at, a);
    pb.output("G", g);
    let program = pb.build();
    let mut inputs = BTreeMap::new();
    inputs.insert("A".to_string(), InputDesc::dense(meta).generated());
    let cluster = Cluster::provision(ClusterSpec::named("m1.large", 8, 2).unwrap()).unwrap();
    cluster
        .store()
        .register_generated("A", meta, Generator::DenseGaussian { seed: 1 })
        .unwrap();
    let opt = optimizer();
    let trace = Trace::enabled();
    let report = opt
        .execute_on_traced(
            &cluster,
            &program,
            &inputs,
            "t",
            ExecMode::Simulated,
            SchedulerConfig::default(),
            &FailurePlan::default(),
            RecoveryConfig::default(),
            &trace,
        )
        .unwrap();
    let log = trace.snapshot().unwrap();
    let cp = log.critical_path();
    let (predicted, _) = opt.predict_phases_on(&cluster, &program, &inputs).unwrap();
    let actual = log.phase_totals();
    let mk = report.makespan_s.max(1e-12);
    let phases = [
        (
            "compute",
            cp.phases.compute_s,
            predicted.compute_s,
            actual.compute_s,
        ),
        ("read", cp.phases.read_s, predicted.read_s, actual.read_s),
        (
            "write",
            cp.phases.write_s,
            predicted.write_s,
            actual.write_s,
        ),
        (
            "startup",
            cp.phases.startup_s,
            predicted.startup_s,
            actual.startup_s,
        ),
        (
            "overhead",
            cp.phases.overhead_s,
            predicted.overhead_s,
            actual.overhead_s,
        ),
    ];
    for (name, path_s, pred, act) in phases {
        s.push(vec![
            name.to_string(),
            f(path_s),
            format!("{:.1}%", 100.0 * path_s / mk),
            f(pred),
            f(act),
        ]);
    }
    s.push(vec![
        "idle".to_string(),
        f(cp.idle_s),
        format!("{:.1}%", 100.0 * cp.idle_s / mk),
        "-".to_string(),
        "-".to_string(),
    ]);
    s.push(vec![
        "makespan".to_string(),
        f(report.makespan_s),
        "100.0%".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    (s, log)
}

// ---------------------------------------------------------------------------
// E19: spot vs on-demand expected cost under a deadline
// ---------------------------------------------------------------------------

/// E19 — bid-vs-checkpoint optimization: for a sweep of spot-market mean
/// prices (as fractions of the on-demand list price), search
/// {on-demand, spot(bid)} × checkpoint interval for the minimum expected
/// cost under a deadline, pricing expected rework with the revocation
/// hazard. Cheap markets favour spot with checkpoints; as the market
/// price approaches list the paid rate *and* the revocation hazard rise
/// together, so the winner flips to on-demand exactly once.
pub fn e19() -> Series {
    use cumulon::cluster::billing::BillingPolicy;
    use cumulon::core::{DeploymentSearch, SpotHazard, SpotSearchSpace};

    let mut s = Series::new(
        "E19",
        "spot vs on-demand: 20k^3 multiply, expected cost under deadline (bid x ckpt search)",
        &[
            "mean price",
            "choice",
            "ckpt (s)",
            "est time (s)",
            "rework (s)",
            "rework ratio",
            "cost ($)",
            "on-demand ($)",
        ],
    );
    let (program, inputs, _) = square_multiply(20_000);
    let model = idealized_cost_model();
    // Per-second billing keeps the expected-cost curve free of hour-ceiling
    // quantization, so the crossover the table demonstrates is clean.
    let space = SearchSpace {
        max_nodes: 16,
        node_stride: 2,
        billing: BillingPolicy::PerSecond,
        ..Default::default()
    };
    let search = DeploymentSearch::new(&model, space);
    // Deadline: 1.5x the tightest feasible makespan, so on-demand always
    // fits while risky unchecked spot configurations can price themselves
    // out through rework.
    let base = search
        .optimize(&program, &inputs, Constraint::Deadline(86_400.0))
        .expect("base deployment for E19");
    let deadline_s = 1.5 * base.estimate.makespan_s;
    for frac in [0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0] {
        let spot = SpotSearchSpace {
            hazard: SpotHazard {
                mean_price_fraction: frac,
                ..SpotHazard::typical()
            },
            ..Default::default()
        };
        let (plan, choice) = search
            .optimize_spot(&program, &inputs, deadline_s, &spot)
            .expect("spot optimization for E19");
        let curve = search.spot_curve(&plan, &spot);
        let on_demand = &curve[0];
        let fail_free = plan.estimate.makespan_s.max(1e-12);
        s.push(vec![
            format!("{:.2}x", frac),
            choice.procurement.label(),
            format!("{:.0}", choice.checkpoint_interval_s),
            f(choice.expected_makespan_s),
            format!("{:.0}", choice.expected_rework_s),
            format!("{:.1}%", 100.0 * choice.expected_rework_s / fail_free),
            format!("{:.2}", choice.expected_cost_dollars),
            format!("{:.2}", on_demand.expected_cost_dollars),
        ]);
    }
    s
}

// ---------------------------------------------------------------------------
// E20: out-of-core tile plane under pressure
// ---------------------------------------------------------------------------

/// E20 — spill transparency: Gram (`G = AᵀA`) and square GEMM runs whose
/// working sets exceed the resident-tile budget by ~10x and ~100x, in
/// *real* mode so tiles actually move through the LRU/blob machinery.
/// Every budgeted run must reproduce the unbounded run's fingerprint and
/// output bits at 1 worker thread and at N (the plane costs zero
/// simulated time by construction); the table reports the churn each
/// budget causes. The working set is measured, not assumed: a probe run
/// under an effectively unbounded plane reports its resident bytes.
pub fn e20() -> Series {
    use cumulon::cluster::{FailurePlan, SchedulerConfig, Trace};
    use cumulon::core::RecoveryConfig;
    use cumulon::dfs::{SpillConfig, SpillStats};

    let mut s = Series::new(
        "E20",
        "out-of-core tile plane: working sets ~10x/~100x the resident budget (real run)",
        &[
            "workload",
            "budget (KiB)",
            "ws/budget",
            "evict",
            "readmit",
            "spilled (MB)",
            "codec ratio",
            "identical t1/tN",
        ],
    );
    let n_threads = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4));
    // (workload index, threads, budget) -> (fingerprint+output bits, stats)
    let run = |wl: usize, threads: usize, budget: u64| -> (String, Option<SpillStats>) {
        let meta = MatrixMeta::new(512, 512, 64);
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 4, 2).unwrap()).unwrap();
        if budget > 0 {
            cluster
                .store()
                .set_memory_budget(&SpillConfig::budgeted(budget))
                .unwrap();
        }
        let mut pb = ProgramBuilder::new();
        let mut inputs = BTreeMap::new();
        let output = if wl == 0 {
            cluster
                .store()
                .register_generated("A", meta, Generator::DenseGaussian { seed: 3 })
                .unwrap();
            inputs.insert("A".to_string(), InputDesc::dense(meta).generated());
            let a = pb.input("A");
            let at = pb.transpose(a);
            let g = pb.mul(at, a);
            pb.output("G", g);
            "G"
        } else {
            for (name, seed) in [("A", 3), ("B", 5)] {
                cluster
                    .store()
                    .register_generated(name, meta, Generator::DenseGaussian { seed })
                    .unwrap();
                inputs.insert(name.to_string(), InputDesc::dense(meta).generated());
            }
            let a = pb.input("A");
            let b = pb.input("B");
            let c = pb.mul(a, b);
            pb.output("C", c);
            "C"
        };
        let program = pb.build();
        let report = optimizer()
            .execute_on_traced(
                &cluster,
                &program,
                &inputs,
                "e20",
                ExecMode::Real,
                SchedulerConfig::default().with_threads(threads),
                &FailurePlan::default(),
                RecoveryConfig::default(),
                &Trace::disabled(),
            )
            .unwrap();
        // Reading the result back drags every spilled tile through the
        // blob store, so the fingerprint also covers re-admission.
        let out = cluster.store().get_local(output).unwrap();
        let fp = format!(
            "{}out {:016x}",
            report.fingerprint(),
            out.frob_norm().to_bits()
        );
        (fp, cluster.store().dfs().spill_stats())
    };
    for (wl, name) in [(0, "gram 512^2 t128"), (1, "gemm 512^2 t128")] {
        let (base_fp, none) = run(wl, 1, 0);
        debug_assert!(none.is_none());
        // Probe: an unbounded plane measures the working set and must
        // itself be invisible (it never evicts).
        let (probe_fp, probe) = run(wl, 1, u64::MAX);
        let ws = probe.expect("plane installed").resident_bytes;
        for budget in [ws / 10, ws / 100] {
            let (fp1, st1) = run(wl, 1, budget);
            let (fpn, _) = run(wl, n_threads, budget);
            let st = st1.expect("budgeted run installs a spill plane");
            s.push(vec![
                name.to_string(),
                format!("{}", budget >> 10),
                format!("{:.0}x", ws as f64 / budget.max(1) as f64),
                st.evictions.to_string(),
                st.readmissions.to_string(),
                format!("{:.1}", st.spilled_bytes_total as f64 / 1e6),
                format!("{:.2}", st.blob.compression_ratio()),
                format!(
                    "{}/{}",
                    fp1 == base_fp && probe_fp == base_fp,
                    fpn == base_fp
                ),
            ]);
        }
    }
    s
}

// ---------------------------------------------------------------------------
// E22: spill-aware scheduling with tile prefetch
// ---------------------------------------------------------------------------

/// E22 — spill-aware scheduling: out-of-core two-step pipelines (a GEMM
/// feeding a Gram, and a GEMM feeding a second GEMM) whose intermediate
/// lives in the DFS tile plane, with the scheduler's residency-preferred
/// wave resolution and frontier tile prefetch switched on. The on arm
/// must reproduce the off arm's fingerprint and output bits exactly
/// (scheduling never moves simulated time — the
/// `spill-schedule-transparency` invariant) while converting synchronous
/// demand readbacks into overlapped prefetched ones. Spill stats are
/// sampled *before* the final result readback, so the table reports the
/// traffic the scheduler can actually influence; the reduction column is
/// the synchronous-readback cut the policy buys.
pub fn e22() -> Series {
    use cumulon::cluster::{FailurePlan, SchedulerConfig, Trace};
    use cumulon::core::RecoveryConfig;
    use cumulon::dfs::{SpillConfig, SpillStats};

    let mut s = Series::new(
        "E22",
        "spill-aware scheduling: prefetch vs demand readbacks at ws/budget 10x-100x (real run)",
        &[
            "workload",
            "budget (KiB)",
            "ws/budget",
            "readback off (MB)",
            "sync on (MB)",
            "prefetched",
            "sync reduction",
            "identical t1/tN",
        ],
    );
    let n_threads = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4));
    let run =
        |wl: usize, threads: usize, budget: u64, depth: usize| -> (String, Option<SpillStats>) {
            let meta = MatrixMeta::new(512, 512, 64);
            let cluster =
                Cluster::provision(ClusterSpec::named("m1.large", 4, 2).unwrap()).unwrap();
            if budget > 0 {
                cluster
                    .store()
                    .set_memory_budget(&SpillConfig::budgeted(budget))
                    .unwrap();
            }
            let mut pb = ProgramBuilder::new();
            let mut inputs = BTreeMap::new();
            for (name, seed) in [("A", 3), ("B", 5)] {
                cluster
                    .store()
                    .register_generated(name, meta, Generator::DenseGaussian { seed })
                    .unwrap();
                inputs.insert(name.to_string(), InputDesc::dense(meta).generated());
            }
            let a = pb.input("A");
            let b = pb.input("B");
            let c = pb.mul(a, b);
            // A GEMM followed by a fan of three element-wise consumers of C.
            // Each consumer is its own fused job whose tasks read one C tile
            // per output tile — the shape the boundary prefetch serves: the
            // producing multiply churns C through the budget, so by the time
            // a consumer wave resolves, its read frontier sits in the spill
            // plane. wl 1 reads C transposed (column-order readbacks).
            let src = if wl == 0 { c } else { pb.transpose(c) };
            let p = pb.add(src, a);
            pb.output("P", p);
            let q = pb.sub(src, b);
            pb.output("Q", q);
            let r = pb.scale(src, 0.5);
            pb.output("R", r);
            let output = "P";
            let program = pb.build();
            let mut config = SchedulerConfig::default().with_threads(threads);
            if depth > 0 {
                config = config.with_prefetch(depth);
            }
            let report = optimizer()
                .execute_on_traced(
                    &cluster,
                    &program,
                    &inputs,
                    "e22",
                    ExecMode::Real,
                    config,
                    &FailurePlan::default(),
                    RecoveryConfig::default(),
                    &Trace::disabled(),
                )
                .unwrap();
            // In-run traffic only: the result readback below drags every
            // spilled output tile back synchronously no matter how the
            // scheduler behaved, so it stays out of the comparison (but
            // inside the fingerprint, covering re-admission correctness).
            let stats = cluster.store().dfs().spill_stats();
            let out = cluster.store().get_local(output).unwrap();
            let fp = format!(
                "{}out {:016x}",
                report.fingerprint(),
                out.frob_norm().to_bits()
            );
            (fp, stats)
        };
    // One wave is 8 slots (4 nodes x 2); a 16-tile frontier covers a
    // wave's band reads with headroom for the next wave.
    const DEPTH: usize = 16;
    for (wl, name) in [(0, "gemm fan-3 512^2 t64"), (1, "gemm fan-3 C' 512^2 t64")] {
        let (probe_fp, probe) = run(wl, 1, u64::MAX, 0);
        let ws = probe.expect("plane installed").resident_bytes;
        for budget in [ws / 10, ws / 100] {
            let (fp_off, st_off) = run(wl, 1, budget, 0);
            let (fp_on, st_on) = run(wl, 1, budget, DEPTH);
            let (fp_tn, _) = run(wl, n_threads, budget, DEPTH);
            let off = st_off.expect("budgeted run installs a spill plane");
            let on = st_on.expect("budgeted run installs a spill plane");
            let sync_on = on.readback_bytes_total - on.readback_bytes_avoided;
            let reduction = 1.0 - sync_on as f64 / off.readback_bytes_total.max(1) as f64;
            s.push(vec![
                name.to_string(),
                format!("{}", budget >> 10),
                format!("{:.0}x", ws as f64 / budget.max(1) as f64),
                format!("{:.1}", off.readback_bytes_total as f64 / 1e6),
                format!("{:.1}", sync_on as f64 / 1e6),
                on.prefetched_files.to_string(),
                format!("{:.0}%", 100.0 * reduction),
                format!(
                    "{}/{}",
                    fp_on == fp_off && probe_fp == fp_off,
                    fp_tn == fp_off
                ),
            ]);
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// T1 — the instance-type catalog.
pub fn t1() -> Series {
    let mut s = Series::new(
        "T1",
        "instance-type catalog (EC2 2013-like)",
        &[
            "name",
            "cores",
            "GF/core",
            "mem (MB)",
            "disk r/w (MB/s)",
            "net (MB/s)",
            "$/h",
        ],
    );
    for i in catalog() {
        s.push(vec![
            i.name.to_string(),
            i.cores.to_string(),
            format!("{:.1}", i.gflops_per_core),
            i.memory_mb.to_string(),
            format!("{:.0}/{:.0}", i.disk_read_mbs, i.disk_write_mbs),
            format!("{:.0}", i.net_mbs),
            format!("{:.3}", i.price_per_hour),
        ]);
    }
    s
}

/// T2 — benchmark-fitted cost-model coefficients.
pub fn t2() -> Series {
    let mut s = Series::new(
        "T2",
        "calibrated task-time coefficients (fitted from probe benchmarks)",
        &[
            "instance",
            "c0 (s)",
            "s/GFlop",
            "s/GB lread",
            "s/GB rread",
            "s/GB lwrite",
            "s/GB rwrite",
            "sigma",
        ],
    );
    let instances: Vec<InstanceType> = ["m1.small", "m1.large", "c1.xlarge", "m2.2xlarge"]
        .iter()
        .filter_map(|n| cumulon::cluster::instances::by_name(n))
        .collect();
    let model = calibrate(&instances, &CalibrationConfig::default()).unwrap();
    for i in &instances {
        let c = model.for_instance(i.name).unwrap();
        s.push(vec![
            i.name.to_string(),
            format!("{:.2}", c.c[0]),
            format!("{:.3}", c.c[1] * 1e9),
            format!("{:.2}", c.c[2] * 1e9),
            format!("{:.2}", c.c[3] * 1e9),
            format!("{:.2}", c.c[4] * 1e9),
            format!("{:.2}", c.c[5] * 1e9),
            format!("{:.3}", c.sigma),
        ]);
    }
    s
}

/// T3 — optimizer-chosen deployments per workload under a 1-hour deadline.
pub fn t3() -> Series {
    let mut s = Series::new(
        "T3",
        "chosen deployments per workload (deadline 60 min)",
        &[
            "workload",
            "instance",
            "nodes",
            "slots",
            "est time (s)",
            "est cost ($)",
        ],
    );
    let opt = optimizer();
    let space = SearchSpace {
        max_nodes: 48,
        node_stride: 2,
        ..Default::default()
    };

    let mut entry = |name: &str, program: &Program, inputs: &BTreeMap<String, InputDesc>| match opt
        .optimize(
            program,
            inputs,
            space.clone(),
            Constraint::Deadline(3_600.0),
        ) {
        Ok(p) => s.push(vec![
            name.to_string(),
            p.instance.name.to_string(),
            p.nodes.to_string(),
            p.slots.to_string(),
            f(p.estimate.makespan_s),
            format!("{:.2}", p.estimate.cost_dollars),
        ]),
        Err(_) => s.push(vec![
            name.to_string(),
            "infeasible".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]),
    };

    let (mp, mi, _) = square_multiply(40_000);
    entry("multiply-40k", &mp, &mi);
    let gnmf = Gnmf {
        m: 200_000,
        n: 200_000,
        rank: 50,
        tile_size: 1_000,
        density: 0.01,
        seed: 5,
    };
    entry(
        "gnmf-iter",
        &cumulon::workloads::Workload::program(&gnmf, 0),
        &cumulon::workloads::Workload::inputs(&gnmf, 0),
    );
    let rsvd = Rsvd {
        m: 400_000,
        n: 200_000,
        k: 200,
        tile_size: 1_000,
        power_iters: 0,
        seed: 9,
    };
    entry(
        "rsvd-sketch",
        &cumulon::workloads::Workload::program(&rsvd, 0),
        &cumulon::workloads::Workload::inputs(&rsvd, 0),
    );
    let reg = Regression {
        rows: 20_000_000,
        features: 2_000,
        tile_size: 1_000,
        lambda: 1.0,
        seed: 2,
    };
    entry(
        "regression-ne",
        &reg.normal_eq_program(),
        &reg.normal_eq_inputs(),
    );
    s
}

/// T4 — prediction-error summary (mean/max of E5's relative errors).
pub fn t4() -> Series {
    let e5 = e5();
    let mut s = Series::new(
        "T4",
        "prediction error summary over the E5 grid",
        &["rows", "mean rel err", "max rel err"],
    );
    let errs: Vec<f64> = e5
        .rows
        .iter()
        .map(|r| {
            r.last()
                .unwrap()
                .trim_end_matches('%')
                .parse::<f64>()
                .unwrap()
                / 100.0
        })
        .collect();
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let max = errs.iter().copied().fold(0.0, f64::max);
    s.push(vec![
        errs.len().to_string(),
        format!("{:.1}%", 100.0 * mean),
        format!("{:.1}%", 100.0 * max),
    ]);
    s
}

/// All experiments in order.
pub fn all() -> Vec<Series> {
    vec![
        e1(),
        e2(),
        e3(),
        e4(),
        e5(),
        e6(),
        e7(),
        e8(),
        e9(),
        e10(),
        e11(),
        e12(),
        e13(),
        e14(),
        e15(),
        e16(),
        e17(),
        e18(),
        e19(),
        e20(),
        e22(),
        t1(),
        t2(),
        t3(),
        t4(),
    ]
}

/// Looks up one experiment by id (case-insensitive).
pub fn by_id(id: &str) -> Option<Series> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1()),
        "e2" => Some(e2()),
        "e3" => Some(e3()),
        "e4" => Some(e4()),
        "e5" => Some(e5()),
        "e6" => Some(e6()),
        "e7" => Some(e7()),
        "e8" => Some(e8()),
        "e9" => Some(e9()),
        "e10" => Some(e10()),
        "e11" => Some(e11()),
        "e12" => Some(e12()),
        "e13" => Some(e13()),
        "e14" => Some(e14()),
        "e15" => Some(e15()),
        "e16" => Some(e16()),
        "e17" => Some(e17()),
        "e18" => Some(e18()),
        "e19" => Some(e19()),
        "e20" => Some(e20()),
        "e22" => Some(e22()),
        "t1" => Some(t1()),
        "t2" => Some(t2()),
        "t3" => Some(t3()),
        "t4" => Some(t4()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_render() {
        let mut s = Series::new("EX", "demo", &["a", "bb"]);
        s.push(vec!["1".into(), "2".into()]);
        let text = s.render();
        assert!(text.contains("EX: demo"));
        assert!(text.contains("bb"));
    }

    #[test]
    fn t1_covers_catalog() {
        assert_eq!(t1().rows.len(), catalog().len());
    }

    #[test]
    fn e2_shows_speedup() {
        let s = e2();
        assert_eq!(s.rows.len(), 5);
        for row in &s.rows {
            let speedup: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.0, "baseline should be slower: {row:?}");
        }
    }

    #[test]
    fn e17_shows_recovery_overhead() {
        let s = e17();
        assert_eq!(s.rows[0][3], "0", "baseline row must be failure-free");
        for row in s.rows.iter().skip(1) {
            assert_eq!(row[3], "1", "exactly one node death per run: {row:?}");
            assert!(
                row[2].starts_with('+') && row[2] != "+0%",
                "recovery must cost time: {row:?}"
            );
        }
        assert!(
            s.rows
                .iter()
                .skip(1)
                .any(|r| r[5].parse::<u64>().unwrap() > 0),
            "at least one kill must force lineage re-execution"
        );
    }

    #[test]
    fn e18_critical_path_accounts_for_makespan() {
        let (s, log) = e18_with_log();
        let cp = log.critical_path();
        let rel = (cp.accounted_s() - cp.makespan_s).abs() / cp.makespan_s.max(1e-12);
        assert!(
            rel < 0.01,
            "critical path must account for the makespan within 1%: rel {rel}"
        );
        assert_eq!(s.rows.last().unwrap()[0], "makespan");
        assert!(!log.tasks.is_empty(), "traced run must record spans");
    }

    #[test]
    fn e19_crossover_is_monotone() {
        let s = e19();
        let winners: Vec<bool> = s.rows.iter().map(|r| r[1].starts_with("spot")).collect();
        assert!(winners[0], "cheap markets must favour spot: {s:?}");
        assert!(
            !winners[winners.len() - 1],
            "at list price on-demand must win: {s:?}"
        );
        let flips = winners.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "winner must flip exactly once: {winners:?}");
        for row in &s.rows {
            let cost: f64 = row[6].parse().unwrap();
            let on_demand: f64 = row[7].parse().unwrap();
            assert!(
                cost <= on_demand + 1e-9,
                "chosen cost must never exceed the on-demand reference: {row:?}"
            );
        }
    }

    /// E20's whole point: runs whose working sets dwarf the budget must
    /// stay bitwise-identical to the unbounded run at both thread
    /// counts, and must demonstrably spill (zero churn would make the
    /// identity column vacuous).
    #[test]
    fn e20_budgeted_runs_reproduce_unbounded_bits() {
        let s = e20();
        assert_eq!(s.rows.len(), 4, "{s:?}");
        for row in &s.rows {
            assert_eq!(row[7], "true/true", "spill plane not transparent: {row:?}");
            let evictions: u64 = row[3].parse().unwrap();
            assert!(evictions > 0, "budgeted run never evicted: {row:?}");
            let spilled: f64 = row[5].parse().unwrap();
            assert!(spilled > 0.0, "no bytes spilled: {row:?}");
        }
    }

    /// E22's gate: spill-aware scheduling must stay bitwise-transparent
    /// at both thread counts, must actually prefetch, and at the milder
    /// ws/budget ~10x point must cut synchronous readback bytes by at
    /// least 30% against the spill-aware-off arm.
    #[test]
    fn e22_prefetch_cuts_sync_readbacks_transparently() {
        let s = e22();
        assert_eq!(s.rows.len(), 4, "{s:?}");
        for row in &s.rows {
            assert_eq!(row[7], "true/true", "prefetch not transparent: {row:?}");
            let prefetched: u64 = row[5].parse().unwrap();
            assert!(prefetched > 0, "frontier prefetch never fired: {row:?}");
            let reduction: f64 = row[6].trim_end_matches('%').parse().unwrap();
            let ratio: f64 = row[2].trim_end_matches('x').parse().unwrap();
            if ratio <= 20.0 {
                assert!(
                    reduction >= 30.0,
                    "sync readbacks must drop >= 30% at ws/budget ~10x: {row:?}"
                );
            } else {
                assert!(
                    reduction > 0.0,
                    "sync readbacks must still drop under heavier pressure: {row:?}"
                );
            }
        }
    }

    #[test]
    fn e6_has_interior_or_boundary_best() {
        let s = e6();
        assert!(s.rows.iter().any(|r| r[2].contains("best")));
    }

    #[test]
    fn by_id_dispatch() {
        assert!(by_id("T1").is_some());
        assert!(by_id("e10").is_some());
        assert!(by_id("nope").is_none());
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_escapes_and_structures() {
        let mut s = Series::new("EX", "demo \"quoted\"", &["a", "b"]);
        s.push(vec!["1".into(), "x\\y".into()]);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""id":"EX""#));
        assert!(json.contains(r#"demo \"quoted\""#));
        assert!(json.contains(r#""x\\y""#));
    }

    #[test]
    fn json_for_real_experiment_parses_shape() {
        let json = t1().to_json();
        // Cheap structural checks without a JSON parser.
        assert_eq!(json.matches("\"rows\":").count(), 1);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
