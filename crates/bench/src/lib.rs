//! Experiment harness for Cumulon-RS: every table and figure of the
//! reproduced evaluation has a function here that regenerates its data.
//! The `repro` binary prints them; the criterion benches time them.

pub mod experiments;

pub use experiments::Series;
