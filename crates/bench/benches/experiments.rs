//! Criterion benches over the experiment harness: one bench per
//! table/figure, so `cargo bench` regenerates every evaluation artifact
//! (the printed series come from the same functions the `repro` binary
//! uses). Sample counts are kept low — each iteration is a full simulated
//! cluster run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::experiments;

fn bench_all_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    type Target = (&'static str, fn() -> experiments::Series);
    let targets: Vec<Target> = vec![
        ("e1_split_sweep", experiments::e1),
        ("e2_vs_mapreduce", experiments::e2),
        ("e3_gnmf_scaleout", experiments::e3),
        ("e4_rsvd_scaleout", experiments::e4),
        ("e5_prediction", experiments::e5),
        ("e6_slots_sweep", experiments::e6),
        ("e7_cost_vs_deadline", experiments::e7),
        ("e8_pareto", experiments::e8),
        ("e9_chain_ablation", experiments::e9),
        ("e10_budget", experiments::e10),
        ("e11_fault_tolerance", experiments::e11),
        ("e12_tile_size", experiments::e12),
        ("e13_billing_ablation", experiments::e13),
        ("e14_fusion_ablation", experiments::e14),
        ("e15_predictor_comparison", experiments::e15),
        ("e16_replication", experiments::e16),
        ("e17_recovery", experiments::e17),
        ("t1_catalog", experiments::t1),
        ("t2_calibration", experiments::t2),
        ("t3_chosen_deployments", experiments::t3),
        ("t4_error_summary", experiments::t4),
    ];
    for (name, f) in targets {
        group.bench_function(name, |b| b.iter(|| black_box(f())));
    }
    group.finish();

    // Print each series once so `cargo bench` output doubles as the
    // evaluation artifact.
    for s in experiments::all() {
        println!("{}", s.render());
    }
}

criterion_group!(benches, bench_all_experiments);
criterion_main!(benches);
