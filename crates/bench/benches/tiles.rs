//! Criterion microbenchmarks of the tile kernels — the per-task costs the
//! whole system's performance model is built on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cumulon::matrix::gen;
use cumulon::matrix::serialize::{decode_tile, encode_tile};
use cumulon::matrix::{CsrTile, DenseTile, Tile};

fn bench_dense_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_gemm");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 128, 256] {
        let a = gen::dense_uniform_tile(1, 0, 0, n, n, -1.0, 1.0);
        let b = gen::dense_uniform_tile(2, 0, 0, n, n, -1.0, 1.0);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| DenseTile::matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();

    // Kernel shoot-out: streaming vs cache-blocked at a representative size.
    let mut group = c.benchmark_group("gemm_kernels_256");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let a = gen::dense_uniform_tile(3, 0, 0, 256, 256, -1.0, 1.0);
    let b = gen::dense_uniform_tile(4, 0, 0, 256, 256, -1.0, 1.0);
    group.bench_function("streaming", |bench| {
        bench.iter(|| {
            let mut out = DenseTile::zeros(256, 256);
            DenseTile::gemm_acc_streaming(&mut out, black_box(&a), black_box(&b)).unwrap();
            out
        })
    });
    group.bench_function("blocked", |bench| {
        bench.iter(|| {
            let mut out = DenseTile::zeros(256, 256);
            DenseTile::gemm_acc_blocked(&mut out, black_box(&a), black_box(&b)).unwrap();
            out
        })
    });
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for density in [0.01, 0.1] {
        let s = gen::sparse_uniform_tile(3, 0, 0, 256, 256, density);
        let d = gen::dense_uniform_tile(4, 0, 0, 256, 256, -1.0, 1.0);
        group.bench_function(format!("256x256@{density}"), |bench| {
            bench.iter(|| {
                let mut out = DenseTile::zeros(256, 256);
                s.spmm_acc(&mut out, black_box(&d)).unwrap();
                out
            })
        });
    }
    group.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let a = gen::sparse_uniform_tile(5, 0, 0, 256, 256, 0.05);
    let b = gen::sparse_uniform_tile(6, 0, 0, 256, 256, 0.05);
    c.bench_function("spgemm_256@5%", |bench| {
        bench.iter(|| black_box(&a).spgemm(black_box(&b)).unwrap())
    });
}

fn bench_transpose(c: &mut Criterion) {
    let a = gen::dense_uniform_tile(7, 0, 0, 512, 512, -1.0, 1.0);
    c.bench_function("dense_transpose_512", |bench| {
        bench.iter(|| black_box(&a).transpose())
    });
}

fn bench_serialization(c: &mut Criterion) {
    let dense = Tile::dense(gen::dense_uniform_tile(8, 0, 0, 256, 256, -1.0, 1.0));
    let sparse = Tile::sparse(gen::sparse_uniform_tile(9, 0, 0, 256, 256, 0.05));
    c.bench_function("encode_dense_256", |b| {
        b.iter(|| encode_tile(black_box(&dense)))
    });
    c.bench_function("encode_sparse_256", |b| {
        b.iter(|| encode_tile(black_box(&sparse)))
    });
    let bytes = encode_tile(&dense);
    c.bench_function("decode_dense_256", |b| {
        b.iter(|| decode_tile(black_box(bytes.clone())).unwrap())
    });
}

fn bench_csr_build(c: &mut Criterion) {
    let d = gen::sparse_uniform_tile(10, 0, 0, 512, 512, 0.02).to_dense();
    c.bench_function("csr_from_dense_512@2%", |b| {
        b.iter(|| CsrTile::from_dense(black_box(&d)))
    });
}

criterion_group!(
    benches,
    bench_dense_gemm,
    bench_spmm,
    bench_spgemm,
    bench_transpose,
    bench_serialization,
    bench_csr_build
);
criterion_main!(benches);
