//! Trace analysis: slot utilization, critical-path extraction, and the
//! estimate-vs-actual phase diff.

use std::fmt::Write as _;

use crate::{PhaseBreakdown, TaskSpan, TraceLog};

/// Busy time of one (node, slot) lane.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilizationRow {
    /// Node index.
    pub node: usize,
    /// Slot index on the node.
    pub slot: usize,
    /// Simulated seconds the slot was occupied by any attempt.
    pub busy_s: f64,
    /// Number of attempts that ran on the slot (including killed ones).
    pub tasks: usize,
}

/// Slot-occupancy timeline summary over a whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilizationReport {
    /// One row per (node, slot) lane, node-major order.
    pub rows: Vec<UtilizationRow>,
    /// The run's end-to-end makespan.
    pub makespan_s: f64,
    /// Total busy time across lanes divided by `makespan x lanes`.
    pub busy_fraction: f64,
}

impl UtilizationReport {
    /// Renders a human-readable utilization table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Slot utilization: {:.1}% busy over {:.1}s makespan ({} lanes)\n",
            self.busy_fraction * 100.0,
            self.makespan_s,
            self.rows.len()
        );
        for r in &self.rows {
            let pct = if self.makespan_s > 0.0 {
                100.0 * r.busy_s / self.makespan_s
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  node{}/slot{}: {:>8.1}s busy ({:>5.1}%), {} attempts",
                r.node, r.slot, r.busy_s, pct, r.tasks
            );
        }
        out
    }
}

/// One hop on the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalStep {
    /// The task attempt occupying this stretch of the path.
    pub span: TaskSpan,
    /// Name of the span's job (empty if the log has no matching job).
    pub job_name: String,
    /// Idle gap between the previous step's end and this span's start.
    pub wait_s: f64,
}

/// The longest chain of task attempts explaining the run's makespan,
/// with simulated time attributed to phases plus scheduling idle time.
///
/// Constructed by [`TraceLog::critical_path`] via a backward walk: from
/// the last-finishing successful attempt, each step's *enabler* is the
/// latest-ending span that finished at or before the step started
/// (preferring a span on the same slot on ties); any positive gap books
/// as idle. Because per-span phases are rescaled to actual durations,
/// `phases.total_s() + idle_s` reproduces the makespan exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPathReport {
    /// Path steps in chronological order.
    pub steps: Vec<CriticalStep>,
    /// Phase attribution summed over the path's spans.
    pub phases: PhaseBreakdown,
    /// Time on the path covered by no span (scheduling/dependency waits,
    /// the lead-in before the first span, and any tail after the last).
    pub idle_s: f64,
    /// The makespan being explained.
    pub makespan_s: f64,
}

impl CriticalPathReport {
    /// `phases.total_s() + idle_s` — equals [`Self::makespan_s`] up to
    /// floating-point rounding.
    pub fn accounted_s(&self) -> f64 {
        self.phases.total_s() + self.idle_s
    }

    /// Renders a human-readable critical-path breakdown.
    pub fn render(&self) -> String {
        let mk = self.makespan_s.max(1e-12);
        let p = &self.phases;
        let mut out = format!(
            "Critical path: {} steps over {:.1}s makespan\n  \
             compute {:.1}s ({:.1}%), read {:.1}s ({:.1}%), write {:.1}s ({:.1}%), \
             startup {:.1}s ({:.1}%), overhead {:.1}s ({:.1}%), idle {:.1}s ({:.1}%)\n",
            self.steps.len(),
            self.makespan_s,
            p.compute_s,
            100.0 * p.compute_s / mk,
            p.read_s,
            100.0 * p.read_s / mk,
            p.write_s,
            100.0 * p.write_s / mk,
            p.startup_s,
            100.0 * p.startup_s / mk,
            p.overhead_s,
            100.0 * p.overhead_s / mk,
            self.idle_s,
            100.0 * self.idle_s / mk,
        );
        for s in &self.steps {
            let t = &s.span;
            let _ = writeln!(
                out,
                "  {:>9.1}s -> {:>9.1}s  {} t{}#{} @node{}/slot{} (wait {:.1}s)",
                t.start_s, t.end_s, s.job_name, t.task, t.attempt, t.node, t.slot, s.wait_s
            );
        }
        out
    }
}

/// Side-by-side comparison of the estimator's predicted phase breakdown
/// against the traced actuals (see [`TraceLog::diff_against`]).
#[derive(Clone, Debug, PartialEq)]
pub struct EstimateDiff {
    /// Phase seconds predicted by `core::estimate` before the run.
    pub predicted: PhaseBreakdown,
    /// Phase seconds attributed by the trace after the run.
    pub actual: PhaseBreakdown,
    /// Predicted end-to-end makespan.
    pub predicted_makespan_s: f64,
    /// Actual (simulated) end-to-end makespan.
    pub actual_makespan_s: f64,
}

impl EstimateDiff {
    /// Renders a predicted-vs-actual table with per-phase ratios.
    pub fn render(&self) -> String {
        fn row(name: &str, predicted: f64, actual: f64) -> String {
            let ratio = if predicted > 0.0 {
                format!("{:.2}x", actual / predicted)
            } else {
                "-".to_string()
            };
            format!("  {name:<9} {predicted:>10.1}s {actual:>10.1}s {ratio:>8}\n")
        }
        let mut out = String::from(
            "Estimate vs actual (per phase, task-seconds summed over attempts)\n  \
             phase      predicted     actual    ratio\n",
        );
        out.push_str(&row(
            "compute",
            self.predicted.compute_s,
            self.actual.compute_s,
        ));
        out.push_str(&row("read", self.predicted.read_s, self.actual.read_s));
        out.push_str(&row("write", self.predicted.write_s, self.actual.write_s));
        out.push_str(&row(
            "startup",
            self.predicted.startup_s,
            self.actual.startup_s,
        ));
        out.push_str(&row(
            "overhead",
            self.predicted.overhead_s,
            self.actual.overhead_s,
        ));
        out.push_str(&row(
            "makespan",
            self.predicted_makespan_s,
            self.actual_makespan_s,
        ));
        out
    }
}

impl TraceLog {
    /// The run's makespan, falling back to the latest span end when the
    /// recorder never stamped one.
    fn effective_makespan(&self) -> f64 {
        if self.makespan_s > 0.0 {
            return self.makespan_s;
        }
        self.tasks.iter().map(|t| t.end_s).fold(0.0, f64::max)
    }

    /// Computes per-lane busy time and the overall busy fraction.
    pub fn utilization(&self) -> UtilizationReport {
        let lanes = self.nodes * self.slots;
        let mut rows: Vec<UtilizationRow> = (0..lanes)
            .map(|i| UtilizationRow {
                node: i / self.slots.max(1),
                slot: i % self.slots.max(1),
                busy_s: 0.0,
                tasks: 0,
            })
            .collect();
        for t in &self.tasks {
            let lane = t.node * self.slots + t.slot;
            if let Some(row) = rows.get_mut(lane) {
                row.busy_s += t.duration_s();
                row.tasks += 1;
            }
        }
        let makespan_s = self.effective_makespan();
        let busy: f64 = rows.iter().map(|r| r.busy_s).sum();
        let busy_fraction = if makespan_s > 0.0 && lanes > 0 {
            busy / (makespan_s * lanes as f64)
        } else {
            0.0
        };
        UtilizationReport {
            rows,
            makespan_s,
            busy_fraction,
        }
    }

    /// Extracts the critical path (see [`CriticalPathReport`]).
    pub fn critical_path(&self) -> CriticalPathReport {
        let makespan_s = self.effective_makespan();
        let mut steps: Vec<CriticalStep> = Vec::new();
        let mut idle_s = 0.0;
        // Start from the last-finishing successful attempt; failed and
        // killed attempts can still appear as enablers (a retry is gated
        // on the attempt it replaces).
        let mut cur = self
            .tasks
            .iter()
            .filter(|t| t.ok)
            .max_by(|a, b| a.end_s.total_cmp(&b.end_s));
        if let Some(last) = cur {
            idle_s += (makespan_s - last.end_s).max(0.0);
        }
        let mut guard = self.tasks.len() + 1;
        while let Some(span) = cur {
            let enabler = self
                .tasks
                .iter()
                .filter(|t| t.end_s <= span.start_s && t.start_s < span.start_s)
                .max_by(|a, b| {
                    a.end_s.total_cmp(&b.end_s).then_with(|| {
                        let a_here = (a.node, a.slot) == (span.node, span.slot);
                        let b_here = (b.node, b.slot) == (span.node, span.slot);
                        a_here
                            .cmp(&b_here)
                            .then_with(|| (b.job, b.task).cmp(&(a.job, a.task)))
                    })
                });
            let wait_s = match enabler {
                Some(e) => (span.start_s - e.end_s).max(0.0),
                None => span.start_s.max(0.0),
            };
            idle_s += wait_s;
            steps.push(CriticalStep {
                span: span.clone(),
                job_name: self
                    .job_name(span.job, span.round)
                    .unwrap_or_default()
                    .to_string(),
                wait_s,
            });
            cur = enabler;
            guard -= 1;
            if guard == 0 {
                break;
            }
        }
        steps.reverse();
        let mut phases = PhaseBreakdown::default();
        for s in &steps {
            phases.add(&s.span.phases);
        }
        CriticalPathReport {
            steps,
            phases,
            idle_s,
            makespan_s,
        }
    }

    /// Builds an [`EstimateDiff`] against a predicted breakdown computed
    /// by the caller (e.g. `core::estimate`'s per-phase prediction).
    pub fn diff_against(
        &self,
        predicted: PhaseBreakdown,
        predicted_makespan_s: f64,
    ) -> EstimateDiff {
        EstimateDiff {
            predicted,
            actual: self.phase_totals(),
            predicted_makespan_s,
            actual_makespan_s: self.effective_makespan(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_span, JobSpan, Trace};

    /// Two lanes, three chained spans with gaps:
    /// lane (0,0): [0,4] then [5,9]; lane (0,1): [4.5, 12].
    fn chained_log() -> TraceLog {
        let t = Trace::enabled();
        t.set_run_meta("m1.large", 1, 2);
        t.record_task(sample_span(0, 0, 0.0, 4.0));
        let mut b = sample_span(0, 1, 5.0, 9.0);
        b.slot = 0;
        t.record_task(b);
        let mut c = sample_span(1, 0, 4.5, 12.0);
        c.slot = 1;
        t.record_task(c);
        t.record_job(JobSpan {
            index: 0,
            name: "gen A".into(),
            op_label: "GEN".into(),
            start_s: 0.0,
            end_s: 9.0,
            round: 0,
        });
        t.record_job(JobSpan {
            index: 1,
            name: "mul C".into(),
            op_label: "MUL".into(),
            start_s: 4.5,
            end_s: 12.0,
            round: 0,
        });
        t.set_makespan(12.0);
        t.snapshot().unwrap()
    }

    #[test]
    fn critical_path_accounts_for_full_makespan() {
        let log = chained_log();
        let cp = log.critical_path();
        // Path: span(1,0) [4.5,12] <- span(0,0) [0,4] (latest end <= 4.5).
        assert_eq!(cp.steps.len(), 2);
        assert_eq!((cp.steps[0].span.job, cp.steps[0].span.task), (0, 0));
        assert_eq!((cp.steps[1].span.job, cp.steps[1].span.task), (1, 0));
        assert_eq!(cp.steps[1].job_name, "mul C");
        assert!((cp.steps[1].wait_s - 0.5).abs() < 1e-12);
        assert!((cp.accounted_s() - cp.makespan_s).abs() < 1e-9 * cp.makespan_s);
        assert!((cp.idle_s - 0.5).abs() < 1e-12);
        let rendered = cp.render();
        assert!(rendered.contains("Critical path: 2 steps"));
        assert!(rendered.contains("mul C"));
    }

    #[test]
    fn utilization_sums_lane_busy_time() {
        let log = chained_log();
        let u = log.utilization();
        assert_eq!(u.rows.len(), 2);
        assert!((u.rows[0].busy_s - 8.0).abs() < 1e-12);
        assert_eq!(u.rows[0].tasks, 2);
        assert!((u.rows[1].busy_s - 7.5).abs() < 1e-12);
        assert!((u.busy_fraction - 15.5 / 24.0).abs() < 1e-12);
        assert!(u.render().contains("node0/slot1"));
    }

    #[test]
    fn failed_attempt_gates_its_retry_on_the_path() {
        let t = Trace::enabled();
        t.set_run_meta("m1.large", 1, 1);
        let mut failed = sample_span(0, 0, 0.0, 3.0);
        failed.ok = false;
        t.record_task(failed);
        let mut retry = sample_span(0, 0, 3.0, 7.0);
        retry.attempt = 2;
        t.record_task(retry);
        t.set_makespan(7.0);
        let cp = t.snapshot().unwrap().critical_path();
        assert_eq!(cp.steps.len(), 2);
        assert!(!cp.steps[0].span.ok);
        assert_eq!(cp.steps[1].span.attempt, 2);
        assert!((cp.accounted_s() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_yields_empty_reports() {
        let log = Trace::enabled().snapshot().unwrap();
        let cp = log.critical_path();
        assert!(cp.steps.is_empty());
        assert_eq!(cp.idle_s, 0.0);
        assert_eq!(log.utilization().rows.len(), 0);
    }

    /// Pins the launch-cost attribution: a one-step critical path whose
    /// span is mostly fixed startup reports that time as `startup`, not
    /// `overhead` — the regression class where a one-wave plan's single
    /// 2s launch read as 66% executor "overhead" on a 3.6s run.
    #[test]
    fn critical_path_reports_startup_apart_from_overhead() {
        let t = Trace::enabled();
        t.set_run_meta("m1.large", 1, 1);
        let mut span = sample_span(0, 0, 0.0, 3.6);
        span.phases = PhaseBreakdown {
            compute_s: 0.9,
            read_s: 0.0,
            write_s: 0.35,
            startup_s: 2.0,
            overhead_s: 0.35,
        };
        t.record_task(span);
        t.set_makespan(3.6);
        let cp = t.snapshot().unwrap().critical_path();
        assert_eq!(cp.steps.len(), 1);
        assert!((cp.phases.startup_s - 2.0).abs() < 1e-12);
        assert!((cp.phases.overhead_s - 0.35).abs() < 1e-12);
        assert!((cp.accounted_s() - cp.makespan_s).abs() < 1e-9);
        let rendered = cp.render();
        assert!(rendered.contains("startup 2.0s (55.6%)"), "{rendered}");
        assert!(rendered.contains("overhead 0.3s (9.7%)"), "{rendered}");
    }

    #[test]
    fn estimate_diff_renders_ratios() {
        let log = chained_log();
        let predicted = PhaseBreakdown {
            compute_s: 4.0,
            read_s: 4.0,
            write_s: 4.0,
            startup_s: 0.0,
            overhead_s: 4.0,
        };
        let diff = log.diff_against(predicted, 10.0);
        assert_eq!(diff.predicted_makespan_s, 10.0);
        assert_eq!(diff.actual_makespan_s, 12.0);
        // Actual totals: three spans of durations 4 + 4 + 7.5 = 15.5s,
        // split evenly across four phases by sample_span.
        assert!((diff.actual.total_s() - 15.5).abs() < 1e-9);
        let rendered = diff.render();
        assert!(rendered.contains("compute"));
        assert!(rendered.contains("makespan"));
    }
}
