//! A minimal, dependency-free JSON parser used by the golden-file schema
//! tests (the workspace vendors no `serde_json`). Handles the full JSON
//! grammar the exporters emit: objects, arrays, strings with `\uXXXX`
//! escapes, numbers (including exponents), booleans and null. Not a
//! general-purpose parser — errors are plain strings and there is no
//! location tracking beyond a byte offset.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is normalized (BTreeMap).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a.as_slice()),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates are not emitted by our exporters;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (already valid: input is &str).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1e3));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn unicode_escape_round_trip() {
        let v = parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn escape_emits_parseable_strings() {
        let raw = "a\"b\\c\nd\u{1}";
        let doc = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(raw));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(BTreeMap::new()));
    }
}
