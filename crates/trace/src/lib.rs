//! Span-level tracing for the Cumulon simulated cluster.
//!
//! The cluster's discrete-event scheduler emits one [`TaskSpan`] per task
//! attempt, one [`JobSpan`] per DAG job, and instant [`TraceEvent`]s for
//! faults, speculation outcomes and recovery rounds. They accumulate in a
//! [`Trace`] handle — a cheap clonable recorder that is a no-op when
//! disabled — and a finished run snapshots them into a [`TraceLog`], which
//! renders as Chrome/Perfetto `trace_event` JSON
//! ([`TraceLog::to_chrome_json`]), a slot-occupancy timeline
//! ([`TraceLog::utilization`]) and a critical-path report
//! ([`TraceLog::critical_path`]).
//!
//! # Determinism contract
//!
//! Recording never reads the clock, allocates task state, or otherwise
//! feeds back into the simulation: enabling a trace leaves run results
//! bitwise-identical at any worker thread count (property-tested in
//! `cumulon-cluster`). Span *content* is deterministic for a fixed seed
//! and thread count; the cache hit/miss counters are the one documented
//! exception — speculative workers warm the tile cache ahead of simulated
//! time, so those two counters may vary with thread count and host timing
//! even though every receipt and result stays identical.
//!
//! # Schema
//!
//! Exported JSON is versioned via [`TRACE_SCHEMA_VERSION`] and documented
//! in DESIGN.md ("Observability"). A minimal dependency-free JSON parser
//! ([`json`]) backs the golden-file schema tests.

#![deny(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

mod export;
pub mod json;
mod report;

pub use report::{
    CriticalPathReport, CriticalStep, EstimateDiff, UtilizationReport, UtilizationRow,
};

/// Version stamp written into every exported trace (`schema_version`).
/// Bump on any breaking change to span fields or JSON layout.
/// v2: task launch cost moved out of `overhead_s` into `startup_s`.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// Simulated seconds attributed to each execution phase of a task (or a
/// whole run). Produced by the hardware model's noise-free cost split and
/// rescaled span-by-span so phase sums reproduce actual span durations
/// exactly (see [`PhaseBreakdown::scaled_to`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Kernel FLOP time.
    pub compute_s: f64,
    /// DFS read time (local + remote), including memory-pressure penalty.
    pub read_s: f64,
    /// DFS write time (local + remote), including memory-pressure penalty.
    pub write_s: f64,
    /// Fixed task launch cost (framework spin-up), paid once per attempt
    /// regardless of work volume. Kept apart from [`Self::overhead_s`]:
    /// on a one-wave plan a single launch can dominate the critical path,
    /// and folding it into "overhead" misreads a constant as executor
    /// inefficiency.
    pub startup_s: f64,
    /// Per-operation overhead: op-fixed seconds and IO-op latency
    /// (namenode round trips). Scales with the work, unlike startup.
    pub overhead_s: f64,
}

impl PhaseBreakdown {
    /// Sum of all five phases.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.read_s + self.write_s + self.startup_s + self.overhead_s
    }

    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &PhaseBreakdown) {
        self.compute_s += other.compute_s;
        self.read_s += other.read_s;
        self.write_s += other.write_s;
        self.startup_s += other.startup_s;
        self.overhead_s += other.overhead_s;
    }

    /// Rescales the breakdown so its phases sum to exactly `duration_s`,
    /// preserving relative proportions. A zero/degenerate breakdown books
    /// the whole duration as overhead. This is how model-derived phase
    /// *fractions* are applied to an *actual* (noise-bearing) span
    /// duration without ever mismatching the observed total.
    pub fn scaled_to(&self, duration_s: f64) -> PhaseBreakdown {
        let total = self.total_s();
        if !total.is_finite() || total <= 0.0 || !duration_s.is_finite() {
            return PhaseBreakdown {
                overhead_s: duration_s.max(0.0),
                ..PhaseBreakdown::default()
            };
        }
        let k = duration_s / total;
        PhaseBreakdown {
            compute_s: self.compute_s * k,
            read_s: self.read_s * k,
            write_s: self.write_s * k,
            startup_s: self.startup_s * k,
            overhead_s: self.overhead_s * k,
        }
    }
}

/// One task attempt executed (or killed) on a cluster slot.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSpan {
    /// Job index within the run's DAG.
    pub job: usize,
    /// Task index within the job.
    pub task: usize,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Node the attempt ran on.
    pub node: usize,
    /// Slot index on that node (`0..slots_per_node`).
    pub slot: usize,
    /// Simulated start time (global timeline; recovery rounds offset).
    pub start_s: f64,
    /// Simulated end time.
    pub end_s: f64,
    /// Whether the attempt finished successfully.
    pub ok: bool,
    /// Whether this was a speculative backup attempt.
    pub backup: bool,
    /// Whether the attempt was killed (twin won, or its node died).
    pub killed: bool,
    /// Scheduling wave in which the attempt was assigned.
    pub wave: u64,
    /// Recovery round (0 = the initial run).
    pub round: u32,
    /// Model-derived phase split, rescaled to this span's duration.
    pub phases: PhaseBreakdown,
    /// Total bytes read from the DFS.
    pub read_bytes: u64,
    /// Bytes read from a replica on the executing node.
    pub read_local_bytes: u64,
    /// Total bytes written to the DFS.
    pub write_bytes: u64,
    /// Number of distinct tile IO operations.
    pub io_ops: u64,
}

impl TaskSpan {
    /// Span duration in simulated seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// One DAG job from first task launch to completion.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpan {
    /// Job index within the run's DAG.
    pub index: usize,
    /// Job name (e.g. `"mul C"`).
    pub name: String,
    /// Physical operator label (e.g. `"MUL"`).
    pub op_label: String,
    /// Simulated start time.
    pub start_s: f64,
    /// Simulated completion time.
    pub end_s: f64,
    /// Recovery round (0 = the initial run).
    pub round: u32,
}

/// An instantaneous event on the run timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A node died; its blocks were re-replicated where possible.
    NodeFailure {
        /// Simulated time of death.
        t_s: f64,
        /// The failed node.
        node: usize,
        /// Bytes re-replicated from surviving replicas.
        rereplicated_bytes: u64,
    },
    /// A speculative backup finished before (and killed) the original.
    SpeculativeWin {
        /// Simulated time of the win.
        t_s: f64,
        /// Winning job index.
        job: usize,
        /// Winning task index.
        task: usize,
    },
    /// A lineage-recovery round began after lost blocks aborted a run.
    RecoveryRound {
        /// Global simulated time at which the round starts.
        t_s: f64,
        /// 1-based recovery round number.
        round: u32,
        /// Number of lost blocks that triggered the round.
        lost_blocks: usize,
    },
    /// A spot revocation warning: the named nodes are doomed and the DFS
    /// drained what the lead window's bandwidth budget allowed.
    RevocationWarning {
        /// Simulated time of the warning.
        t_s: f64,
        /// Nodes under the warning.
        nodes: Vec<usize>,
        /// Sole-replica bytes proactively copied to survivors.
        drained_bytes: u64,
    },
    /// A correlated bulk spot revocation took effect.
    Revocation {
        /// Simulated time the nodes were reclaimed.
        t_s: f64,
        /// Nodes reclaimed together.
        nodes: Vec<usize>,
        /// Bytes re-replicated from surviving replicas afterwards.
        rereplicated_bytes: u64,
    },
}

impl TraceEvent {
    /// The event's time on the global simulated timeline.
    pub fn t_s(&self) -> f64 {
        match self {
            TraceEvent::NodeFailure { t_s, .. }
            | TraceEvent::SpeculativeWin { t_s, .. }
            | TraceEvent::RecoveryRound { t_s, .. }
            | TraceEvent::RevocationWarning { t_s, .. }
            | TraceEvent::Revocation { t_s, .. } => *t_s,
        }
    }

    fn offset_by(&mut self, dt: f64) {
        match self {
            TraceEvent::NodeFailure { t_s, .. }
            | TraceEvent::SpeculativeWin { t_s, .. }
            | TraceEvent::RecoveryRound { t_s, .. }
            | TraceEvent::RevocationWarning { t_s, .. }
            | TraceEvent::Revocation { t_s, .. } => *t_s += dt,
        }
    }
}

/// A completed run's full span record, snapshotted from a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Schema version of this log (see [`TRACE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Instance type name (e.g. `"m1.large"`).
    pub instance: String,
    /// Number of provisioned nodes.
    pub nodes: usize,
    /// Slots per node.
    pub slots: usize,
    /// End-to-end simulated makespan across all recovery rounds.
    pub makespan_s: f64,
    /// Every task attempt, in completion order.
    pub tasks: Vec<TaskSpan>,
    /// Every DAG job, in completion order.
    pub jobs: Vec<JobSpan>,
    /// Instant events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Service request id this run was executed for (`cumulon serve`
    /// threads it through via [`Trace::set_request_id`]); `None` for
    /// direct CLI runs. Exported in the Chrome JSON only when set, so
    /// standalone traces are byte-identical with or without this field.
    pub request_id: Option<String>,
    /// Tile-cache hits observed on the canonical execution path.
    /// Parallelism-sensitive: see the crate-level determinism contract.
    pub cache_hits: u64,
    /// Tile-cache misses observed on the canonical execution path.
    /// Parallelism-sensitive: see the crate-level determinism contract.
    pub cache_misses: u64,
    /// Spill-plane wire bytes whose synchronous readback was avoided by
    /// scheduler prefetch (tiles readmitted ahead of demand and claimed
    /// by a later read). Parallelism-sensitive, like the cache counters.
    pub spill_readback_avoided_bytes: u64,
}

impl TraceLog {
    /// Name of job `index` in recovery round `round`, if recorded.
    pub fn job_name(&self, index: usize, round: u32) -> Option<&str> {
        self.jobs
            .iter()
            .find(|j| j.index == index && j.round == round)
            .map(|j| j.name.as_str())
    }

    /// Sum of per-span phase attributions over all successful attempts.
    pub fn phase_totals(&self) -> PhaseBreakdown {
        let mut total = PhaseBreakdown::default();
        for t in self.tasks.iter().filter(|t| t.ok) {
            total.add(&t.phases);
        }
        total
    }
}

struct Buf {
    instance: String,
    nodes: usize,
    slots: usize,
    makespan_s: f64,
    round: u32,
    offset_s: f64,
    tasks: Vec<TaskSpan>,
    jobs: Vec<JobSpan>,
    events: Vec<TraceEvent>,
    request_id: Option<String>,
}

struct TraceInner {
    buf: Mutex<Buf>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    spill_readback_avoided_bytes: AtomicU64,
}

thread_local! {
    static SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard that suppresses all trace recording on the current thread
/// while alive. Speculative worker threads hold one for the duration of a
/// lookahead execution so only the canonical discrete-event replay books
/// spans and cache counters.
pub struct SuppressGuard {
    prev: bool,
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|s| s.set(self.prev));
    }
}

/// Suppresses trace recording on this thread until the guard drops.
pub fn suppress() -> SuppressGuard {
    let prev = SUPPRESSED.with(|s| s.replace(true));
    SuppressGuard { prev }
}

fn suppressed() -> bool {
    SUPPRESSED.with(|s| s.get())
}

/// A clonable handle for recording spans during one run.
///
/// [`Trace::disabled`] is the zero-overhead default: every recording
/// method early-returns on a `None` inner pointer. [`Trace::enabled`]
/// allocates a shared buffer; clones share it, so the scheduler, DFS and
/// recovery driver can all record into one log. Call [`Trace::snapshot`]
/// after the run to obtain the [`TraceLog`].
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// A no-op handle: recording costs one branch, nothing is stored.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// A live handle with a fresh, empty span buffer.
    pub fn enabled() -> Self {
        Trace {
            inner: Some(Arc::new(TraceInner {
                buf: Mutex::new(Buf {
                    instance: String::new(),
                    nodes: 0,
                    slots: 0,
                    makespan_s: 0.0,
                    round: 0,
                    offset_s: 0.0,
                    tasks: Vec::new(),
                    jobs: Vec::new(),
                    events: Vec::new(),
                    request_id: None,
                }),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                spill_readback_avoided_bytes: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the cluster shape the run executes on.
    pub fn set_run_meta(&self, instance: &str, nodes: usize, slots: usize) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            buf.instance = instance.to_string();
            buf.nodes = nodes;
            buf.slots = slots;
        }
    }

    /// Tags the trace with the service request id that initiated the run,
    /// so an audited trace can be matched back to the `cumulon serve`
    /// request (and its response fingerprint) that produced it. Purely
    /// observational, like all recording: it never feeds back into the
    /// simulation.
    pub fn set_request_id(&self, request_id: &str) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            buf.request_id = Some(request_id.to_string());
        }
    }

    /// Enters recovery round `round`, whose local time 0 sits at global
    /// time `offset_s`. Subsequently recorded spans and events are shifted
    /// onto the global timeline automatically.
    pub fn set_round(&self, round: u32, offset_s: f64) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            buf.round = round;
            buf.offset_s = offset_s;
        }
    }

    /// Records the simulated makespan of the current round (round-local,
    /// like spans); the stored run makespan becomes `offset + makespan`,
    /// so the last round's stamp yields the global end-to-end makespan.
    pub fn set_makespan(&self, makespan_s: f64) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            buf.makespan_s = buf.offset_s + makespan_s;
        }
    }

    /// Records one task attempt. `span.start_s`/`end_s` are round-local;
    /// the current round and offset are applied here.
    pub fn record_task(&self, mut span: TaskSpan) {
        if let Some(inner) = &self.inner {
            if suppressed() {
                return;
            }
            let mut buf = inner.buf.lock().unwrap();
            span.round = buf.round;
            span.start_s += buf.offset_s;
            span.end_s += buf.offset_s;
            buf.tasks.push(span);
        }
    }

    /// Records one job span (round-local times, shifted like tasks).
    pub fn record_job(&self, mut span: JobSpan) {
        if let Some(inner) = &self.inner {
            if suppressed() {
                return;
            }
            let mut buf = inner.buf.lock().unwrap();
            span.round = buf.round;
            span.start_s += buf.offset_s;
            span.end_s += buf.offset_s;
            buf.jobs.push(span);
        }
    }

    /// Records one instant event (round-local time, shifted like tasks).
    pub fn record_event(&self, mut event: TraceEvent) {
        if let Some(inner) = &self.inner {
            if suppressed() {
                return;
            }
            let mut buf = inner.buf.lock().unwrap();
            let dt = buf.offset_s;
            event.offset_by(dt);
            buf.events.push(event);
        }
    }

    /// Counts one tile-cache hit (no-op when disabled or suppressed).
    pub fn cache_hit(&self) {
        if let Some(inner) = &self.inner {
            if !suppressed() {
                inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts one tile-cache miss (no-op when disabled or suppressed).
    pub fn cache_miss(&self) {
        if let Some(inner) = &self.inner {
            if !suppressed() {
                inner.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Credits `bytes` of spill readback avoided by prefetch (no-op when
    /// disabled or suppressed). Attributed run-wide, like the cache
    /// counters: the saving shows up in the phase report's read lane, not
    /// per span.
    pub fn spill_readback_avoided(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            if !suppressed() {
                inner
                    .spill_readback_avoided_bytes
                    .fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Snapshots the recorded spans into a [`TraceLog`]. Returns `None`
    /// for a disabled handle. The buffer is cloned, not drained, so the
    /// handle stays usable (e.g. for further recovery rounds).
    pub fn snapshot(&self) -> Option<TraceLog> {
        let inner = self.inner.as_ref()?;
        let buf = inner.buf.lock().unwrap();
        Some(TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            instance: buf.instance.clone(),
            nodes: buf.nodes,
            slots: buf.slots,
            makespan_s: buf.makespan_s,
            tasks: buf.tasks.clone(),
            jobs: buf.jobs.clone(),
            events: buf.events.clone(),
            request_id: buf.request_id.clone(),
            cache_hits: inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: inner.cache_misses.load(Ordering::Relaxed),
            spill_readback_avoided_bytes: inner
                .spill_readback_avoided_bytes
                .load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
pub(crate) fn sample_span(job: usize, task: usize, start_s: f64, end_s: f64) -> TaskSpan {
    TaskSpan {
        job,
        task,
        attempt: 1,
        node: 0,
        slot: 0,
        start_s,
        end_s,
        ok: true,
        backup: false,
        killed: false,
        wave: 0,
        round: 0,
        phases: PhaseBreakdown {
            compute_s: 1.0,
            read_s: 1.0,
            write_s: 1.0,
            startup_s: 0.0,
            overhead_s: 1.0,
        }
        .scaled_to(end_s - start_s),
        read_bytes: 1024,
        read_local_bytes: 512,
        write_bytes: 256,
        io_ops: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record_task(sample_span(0, 0, 0.0, 1.0));
        t.cache_hit();
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn enabled_trace_round_trips_spans() {
        let t = Trace::enabled();
        t.set_run_meta("m1.large", 4, 2);
        t.record_task(sample_span(0, 1, 0.0, 2.0));
        t.record_job(JobSpan {
            index: 0,
            name: "mul C".into(),
            op_label: "MUL".into(),
            start_s: 0.0,
            end_s: 2.0,
            round: 0,
        });
        t.record_event(TraceEvent::SpeculativeWin {
            t_s: 1.5,
            job: 0,
            task: 1,
        });
        t.cache_hit();
        t.cache_miss();
        t.cache_miss();
        t.set_makespan(2.0);
        let log = t.snapshot().unwrap();
        assert_eq!(log.schema_version, TRACE_SCHEMA_VERSION);
        assert_eq!(log.instance, "m1.large");
        assert_eq!((log.nodes, log.slots), (4, 2));
        assert_eq!(log.tasks.len(), 1);
        assert_eq!(log.jobs.len(), 1);
        assert_eq!(log.events.len(), 1);
        assert_eq!((log.cache_hits, log.cache_misses), (1, 2));
        assert_eq!(log.job_name(0, 0), Some("mul C"));
        assert_eq!(log.job_name(0, 1), None);
    }

    #[test]
    fn round_offset_shifts_spans_onto_global_timeline() {
        let t = Trace::enabled();
        t.record_task(sample_span(0, 0, 0.0, 5.0));
        t.set_round(1, 100.0);
        t.record_task(sample_span(0, 1, 0.0, 5.0));
        t.record_event(TraceEvent::RecoveryRound {
            t_s: 0.0,
            round: 1,
            lost_blocks: 2,
        });
        let log = t.snapshot().unwrap();
        assert_eq!(log.tasks[0].round, 0);
        assert_eq!(log.tasks[0].start_s, 0.0);
        assert_eq!(log.tasks[1].round, 1);
        assert_eq!(log.tasks[1].start_s, 100.0);
        assert_eq!(log.tasks[1].end_s, 105.0);
        assert_eq!(log.events[0].t_s(), 100.0);
    }

    #[test]
    fn suppression_guard_masks_recording_on_this_thread() {
        let t = Trace::enabled();
        {
            let _g = suppress();
            t.record_task(sample_span(0, 0, 0.0, 1.0));
            t.cache_hit();
            t.cache_miss();
        }
        t.record_task(sample_span(0, 1, 0.0, 1.0));
        t.cache_hit();
        let log = t.snapshot().unwrap();
        assert_eq!(log.tasks.len(), 1);
        assert_eq!(log.tasks[0].task, 1);
        assert_eq!((log.cache_hits, log.cache_misses), (1, 0));
    }

    #[test]
    fn suppression_nests() {
        let outer = suppress();
        {
            let _inner = suppress();
        }
        assert!(suppressed());
        drop(outer);
        assert!(!suppressed());
    }

    #[test]
    fn phase_breakdown_scales_exactly() {
        let p = PhaseBreakdown {
            compute_s: 3.0,
            read_s: 1.0,
            write_s: 0.5,
            startup_s: 2.5,
            overhead_s: 0.5,
        };
        let scaled = p.scaled_to(15.0);
        assert!((scaled.total_s() - 15.0).abs() < 1e-12);
        assert!((scaled.compute_s - 6.0).abs() < 1e-12);
        assert!((scaled.startup_s - 5.0).abs() < 1e-12);
        let degenerate = PhaseBreakdown::default().scaled_to(4.0);
        assert_eq!(degenerate.overhead_s, 4.0);
        assert_eq!(degenerate.total_s(), 4.0);
    }

    #[test]
    fn phase_totals_skip_failed_attempts() {
        let t = Trace::enabled();
        t.record_task(sample_span(0, 0, 0.0, 4.0));
        let mut failed = sample_span(0, 1, 0.0, 4.0);
        failed.ok = false;
        t.record_task(failed);
        let log = t.snapshot().unwrap();
        assert!((log.phase_totals().total_s() - 4.0).abs() < 1e-9);
    }
}
