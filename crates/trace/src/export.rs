//! Chrome/Perfetto `trace_event` JSON export.
//!
//! Emits the *object* form of the Trace Event Format — an object with a
//! `traceEvents` array plus extra top-level keys, which Perfetto and
//! `chrome://tracing` both accept and ignore. Each (node, slot) pair maps
//! to a (pid, tid): nodes become processes, slots become threads, so the
//! timeline renders one swimlane per slot. Everything is hand-emitted
//! (the workspace vendors no JSON serializer); the companion [`crate::json`]
//! parser validates the output in tests.

use std::fmt::Write as _;

use crate::json::escape;
use crate::{PhaseBreakdown, TraceEvent, TraceLog};

/// Formats an `f64` as a JSON number (non-finite values become `0`,
/// which the simulator never produces in a valid run).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Simulated seconds → integer-friendly microseconds for `ts`/`dur`.
fn us(s: f64) -> String {
    num(s * 1e6)
}

fn phase_args(out: &mut String, p: &PhaseBreakdown) {
    let _ = write!(
        out,
        "\"compute_s\":{},\"read_s\":{},\"write_s\":{},\"startup_s\":{},\"overhead_s\":{}",
        num(p.compute_s),
        num(p.read_s),
        num(p.write_s),
        num(p.startup_s),
        num(p.overhead_s)
    );
}

impl TraceLog {
    /// Renders the log as Chrome `trace_event` JSON (object form).
    ///
    /// Layout (schema version [`crate::TRACE_SCHEMA_VERSION`]):
    ///
    /// * `schema_version` — integer version stamp;
    /// * `cumulon` — run metadata: `instance`, `nodes`, `slots`,
    ///   `makespan_s`, `cache_hits`, `cache_misses`, an optional
    ///   `request_id` (present only for `cumulon serve` runs, see
    ///   [`crate::Trace::set_request_id`]), an optional
    ///   `spill_readback_avoided_bytes` (present only when scheduler
    ///   prefetch avoided readbacks, see
    ///   [`crate::Trace::spill_readback_avoided`]), and the aggregated
    ///   `phases` object
    ///   (`compute_s`/`read_s`/`write_s`/`startup_s`/`overhead_s`);
    /// * `traceEvents` — `"M"` process/thread-name metadata, one `"X"`
    ///   complete event per task attempt (`pid` = node, `tid` = slot,
    ///   `ts`/`dur` in simulated microseconds, span details under
    ///   `args`), and `"i"` instant events for node failures,
    ///   speculative wins and recovery rounds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.tasks.len() * 256);
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"cumulon\":{{\"instance\":\"{}\",\"nodes\":{},\
             \"slots\":{},\"makespan_s\":{},\"cache_hits\":{},\"cache_misses\":{},",
            self.schema_version,
            escape(&self.instance),
            self.nodes,
            self.slots,
            num(self.makespan_s),
            self.cache_hits,
            self.cache_misses,
        );
        // Emitted only when set so standalone (non-service) traces stay
        // byte-identical to pre-service golden files.
        if let Some(rid) = &self.request_id {
            let _ = write!(out, "\"request_id\":\"{}\",", escape(rid));
        }
        // Emitted only when nonzero so runs without prefetch stay
        // byte-identical to earlier golden files.
        if self.spill_readback_avoided_bytes > 0 {
            let _ = write!(
                out,
                "\"spill_readback_avoided_bytes\":{},",
                self.spill_readback_avoided_bytes
            );
        }
        out.push_str("\"phases\":{");
        phase_args(&mut out, &self.phase_totals());
        out.push_str("}},\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for node in 0..self.nodes {
            push(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\
                 \"args\":{{\"name\":\"node{node}\"}}}}"
            );
            for slot in 0..self.slots {
                push(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\
                     \"tid\":{slot},\"args\":{{\"name\":\"slot{slot}\"}}}}"
                );
            }
        }
        for t in &self.tasks {
            push(&mut out);
            let job_name = self.job_name(t.job, t.round).unwrap_or("job");
            let _ = write!(
                out,
                "{{\"name\":\"{}/t{}#{}\",\"cat\":\"task\",\"ph\":\"X\",\
                 \"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\
                 \"job\":{},\"task\":{},\"attempt\":{},\"ok\":{},\"backup\":{},\
                 \"killed\":{},\"wave\":{},\"round\":{},\"read_bytes\":{},\
                 \"read_local_bytes\":{},\"write_bytes\":{},\"io_ops\":{},",
                escape(job_name),
                t.task,
                t.attempt,
                t.node,
                t.slot,
                us(t.start_s),
                us(t.duration_s()),
                t.job,
                t.task,
                t.attempt,
                t.ok,
                t.backup,
                t.killed,
                t.wave,
                t.round,
                t.read_bytes,
                t.read_local_bytes,
                t.write_bytes,
                t.io_ops,
            );
            phase_args(&mut out, &t.phases);
            out.push_str("}}");
        }
        for j in &self.jobs {
            push(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"job\",\"ph\":\"X\",\"pid\":{},\
                 \"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"job\":{},\
                 \"op\":\"{}\",\"round\":{}}}}}",
                escape(&j.name),
                self.nodes.max(1),
                us(j.start_s),
                us(j.end_s - j.start_s),
                j.index,
                escape(&j.op_label),
                j.round,
            );
        }
        for e in &self.events {
            push(&mut out);
            match e {
                TraceEvent::NodeFailure {
                    t_s,
                    node,
                    rereplicated_bytes,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"node_failure\",\"cat\":\"fault\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":{node},\"tid\":0,\"ts\":{},\"args\":{{\
                         \"node\":{node},\"rereplicated_bytes\":{rereplicated_bytes}}}}}",
                        us(*t_s),
                    );
                }
                TraceEvent::SpeculativeWin { t_s, job, task } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"speculative_win\",\"cat\":\"spec\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\
                         \"job\":{job},\"task\":{task}}}}}",
                        us(*t_s),
                    );
                }
                TraceEvent::RecoveryRound {
                    t_s,
                    round,
                    lost_blocks,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"recovery_round\",\"cat\":\"recovery\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\
                         \"round\":{round},\"lost_blocks\":{lost_blocks}}}}}",
                        us(*t_s),
                    );
                }
                TraceEvent::RevocationWarning {
                    t_s,
                    nodes,
                    drained_bytes,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"revocation_warning\",\"cat\":\"fault\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\
                         \"nodes\":{},\"drained_bytes\":{drained_bytes}}}}}",
                        us(*t_s),
                        nodes.len(),
                    );
                }
                TraceEvent::Revocation {
                    t_s,
                    nodes,
                    rereplicated_bytes,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"revocation\",\"cat\":\"fault\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\
                         \"nodes\":{},\"rereplicated_bytes\":{rereplicated_bytes}}}}}",
                        us(*t_s),
                        nodes.len(),
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::{sample_span, JobSpan, Trace};

    fn sample_log() -> TraceLog {
        let t = Trace::enabled();
        t.set_run_meta("m1.large", 2, 2);
        t.record_task(sample_span(0, 0, 0.0, 3.0));
        let mut backup = sample_span(0, 1, 1.0, 2.0);
        backup.backup = true;
        backup.node = 1;
        backup.slot = 1;
        t.record_task(backup);
        t.record_job(JobSpan {
            index: 0,
            name: "mul \"C\"".into(),
            op_label: "MUL".into(),
            start_s: 0.0,
            end_s: 3.0,
            round: 0,
        });
        t.record_event(TraceEvent::NodeFailure {
            t_s: 2.5,
            node: 1,
            rereplicated_bytes: 4096,
        });
        t.record_event(TraceEvent::SpeculativeWin {
            t_s: 2.0,
            job: 0,
            task: 1,
        });
        t.record_event(TraceEvent::RecoveryRound {
            t_s: 3.0,
            round: 1,
            lost_blocks: 1,
        });
        t.cache_hit();
        t.set_makespan(3.0);
        t.snapshot().unwrap()
    }

    #[test]
    fn chrome_json_parses_and_carries_schema() {
        let log = sample_log();
        let doc = parse(&log.to_chrome_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64(),
            Some(crate::TRACE_SCHEMA_VERSION as f64)
        );
        let meta = doc.get("cumulon").unwrap();
        assert_eq!(meta.get("instance").unwrap().as_str(), Some("m1.large"));
        assert_eq!(meta.get("makespan_s").unwrap().as_f64(), Some(3.0));
        assert!(meta.get("phases").unwrap().get("compute_s").is_some());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 nodes x (1 process_name + 2 thread_name) + 2 tasks + 1 job + 3 instants.
        assert_eq!(events.len(), 6 + 2 + 1 + 3);
        let x: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(x.len(), 3);
        let task0 = x
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("task"))
            .unwrap();
        assert_eq!(task0.get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(task0.get("dur").unwrap().as_f64(), Some(3e6));
        let args = task0.get("args").unwrap();
        assert_eq!(args.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(args.get("read_bytes").unwrap().as_f64(), Some(1024.0));
    }

    #[test]
    fn quotes_in_job_names_are_escaped() {
        let log = sample_log();
        let doc = parse(&log.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("mul \"C\"")));
    }

    #[test]
    fn request_id_exported_only_when_set() {
        let plain = sample_log();
        let doc = parse(&plain.to_chrome_json()).unwrap();
        assert!(doc.get("cumulon").unwrap().get("request_id").is_none());
        assert!(!plain.to_chrome_json().contains("request_id"));

        let t = Trace::enabled();
        t.set_run_meta("m1.large", 1, 1);
        t.set_request_id("req-42");
        let tagged = t.snapshot().unwrap();
        let doc = parse(&tagged.to_chrome_json()).unwrap();
        assert_eq!(
            doc.get("cumulon")
                .unwrap()
                .get("request_id")
                .and_then(|v| v.as_str()),
            Some("req-42")
        );
    }

    #[test]
    fn empty_log_is_still_valid_json() {
        let log = Trace::enabled().snapshot().unwrap();
        let doc = parse(&log.to_chrome_json()).expect("valid JSON");
        assert_eq!(
            doc.get("traceEvents").unwrap().as_arr().map(<[_]>::len),
            Some(0)
        );
    }
}
