//! Spot-market survivability and elastic re-provisioning, end to end.
//!
//! The acceptance bar: a power-iteration run that loses half its fleet to
//! one correlated bulk revocation must still finish — drain what the
//! warning window allows, recover the rest via lineage (rewinding to a
//! checkpoint when lineage is truncated) — and produce a final iterate
//! bitwise-identical to the failure-free run, at any worker thread count.

use cumulon_cluster::scheduler::Revocation;
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode, FailurePlan, SchedulerConfig};
use cumulon_core::calibrate::{CostModel, OpCoefficients};
use cumulon_core::{Optimizer, RecoveryConfig};
use cumulon_dfs::DfsConfig;
use cumulon_workloads::power::PowerIteration;
use cumulon_workloads::{run_checkpointed, run_elastic, CheckpointPolicy, ElasticPolicy, Workload};
use proptest::prelude::*;

fn optimizer() -> Optimizer {
    let mut m = CostModel::default();
    for i in cumulon_cluster::instances::catalog() {
        m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    Optimizer::new(m)
}

fn power() -> PowerIteration {
    PowerIteration {
        n: 24,
        tile_size: 6,
        density: 0.5,
        seed: 7,
    }
}

/// A replication-1 cluster (every lost node loses data) with inputs set up.
fn repl1_cluster(w: &PowerIteration, nodes: u32) -> Cluster {
    let spec = ClusterSpec::named("m1.large", nodes, 2).unwrap();
    let cluster = Cluster::provision_with(
        spec,
        Default::default(),
        DfsConfig {
            replication: 1,
            ..Default::default()
        },
    )
    .unwrap();
    w.setup(cluster.store()).unwrap();
    cluster
}

fn threads_config(threads: usize) -> SchedulerConfig {
    SchedulerConfig {
        threads,
        ..Default::default()
    }
}

fn x_bits(cluster: &Cluster, iter: usize) -> Vec<u64> {
    cluster
        .store()
        .get_local(&format!("x_{iter}"))
        .unwrap()
        .to_dense_vec()
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// ISSUE acceptance: bulk revocation of half the fleet mid-run, bitwise
/// identical outcome at threads 1 and N.
#[test]
fn half_fleet_revocation_is_bitwise_survivable() {
    let w = power();
    let opt = optimizer();
    let iters = 3usize;
    let policy = CheckpointPolicy {
        interval: 2,
        replication: 3,
        max_rewinds: 6,
    };

    // Failure-free baseline at one thread.
    let baseline = repl1_cluster(&w, 8);
    let clean = run_checkpointed(
        &w,
        &opt,
        &baseline,
        iters,
        ExecMode::Real,
        threads_config(1),
        |_| FailurePlan::default(),
        RecoveryConfig::default(),
        policy,
    )
    .unwrap();
    assert_eq!(clean.reports.len(), iters);
    let clean_bits = x_bits(&baseline, iters);
    let mid = clean.reports[1].makespan_s / 2.0;

    // Revoke half the fleet (nodes 4..8) together in iteration 1, with a
    // warning window the drain can use.
    let revoke = move |iter: usize| {
        if iter == 1 {
            FailurePlan {
                revocations: vec![Revocation {
                    at_s: mid,
                    nodes: vec![4, 5, 6, 7],
                    warning_lead_s: mid / 2.0,
                }],
                ..Default::default()
            }
        } else {
            FailurePlan::default()
        }
    };
    for threads in [1usize, 4] {
        let cluster = repl1_cluster(&w, 8);
        let run = run_checkpointed(
            &w,
            &opt,
            &cluster,
            iters,
            ExecMode::Real,
            threads_config(threads),
            revoke,
            RecoveryConfig::default(),
            policy,
        )
        .unwrap();
        assert_eq!(run.reports.len(), iters);
        assert_eq!(
            cluster.live_nodes(),
            4,
            "half the fleet must actually be gone (threads {threads})"
        );
        // The revocation must be visible somewhere: either the surviving
        // iteration's fault stats recorded it, or it forced a rewind.
        let revocations: u64 = run.reports.iter().map(|r| r.faults.revocations).sum();
        assert!(
            revocations >= 1 || run.rewinds >= 1,
            "revocation left no trace in the run accounting (threads {threads})"
        );
        assert_eq!(
            x_bits(&cluster, iters),
            clean_bits,
            "final iterate diverged from fault-free at threads {threads}"
        );
    }
}

/// Elastic driver: revoked capacity is replaced with fresh nodes at the
/// next boundary, the cost model refits from the traced prefix, and the
/// result stays bitwise-identical to a fixed-fleet failure-free run.
#[test]
fn elastic_replaces_revoked_capacity_and_refits() {
    let w = power();
    let iters = 3usize;

    // Fixed-fleet failure-free baseline (replication 3: no data loss).
    let baseline = {
        let spec = ClusterSpec::named("m1.large", 6, 2).unwrap();
        let cluster = Cluster::provision(spec).unwrap();
        w.setup(cluster.store()).unwrap();
        let opt = optimizer();
        run_checkpointed(
            &w,
            &opt,
            &cluster,
            iters,
            ExecMode::Real,
            SchedulerConfig::default(),
            |_| FailurePlan::default(),
            RecoveryConfig::default(),
            CheckpointPolicy::default(),
        )
        .unwrap();
        x_bits(&cluster, iters)
    };

    let spec = ClusterSpec::named("m1.large", 6, 2).unwrap();
    let cluster = Cluster::provision(spec).unwrap();
    w.setup(cluster.store()).unwrap();
    let mut opt = optimizer();
    let run = run_elastic(
        &w,
        &mut opt,
        &cluster,
        iters,
        ExecMode::Real,
        SchedulerConfig::default(),
        |iter| {
            if iter == 0 {
                FailurePlan {
                    revocations: vec![Revocation {
                        at_s: 1e-3,
                        nodes: vec![4, 5],
                        warning_lead_s: 5e-4,
                    }],
                    ..Default::default()
                }
            } else {
                FailurePlan::default()
            }
        },
        RecoveryConfig::default(),
        ElasticPolicy::replace_at(6),
    )
    .unwrap();
    assert_eq!(run.reports.len(), iters);
    assert_eq!(run.decisions.len(), iters);
    // The first boundary replaced the two revoked nodes with fresh ids.
    assert_eq!(run.decisions[0].grown, 2, "{:?}", run.decisions[0]);
    assert_eq!(cluster.live_nodes(), 6);
    // Samples accumulated every iteration, and once past the minimum the
    // prior-anchored refit must actually fire.
    assert!(run.decisions[iters - 1].samples > run.decisions[0].samples);
    assert!(run.refits >= 1, "{:?}", run.decisions);
    // Elasticity must not perturb the numerics.
    assert_eq!(x_bits(&cluster, iters), baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bulk revocations at arbitrary DES times — including during the
    /// checkpoint-adjacent first iteration and during recovery replays —
    /// never change the final iterate, at 1 worker thread or several.
    #[test]
    fn arbitrary_bulk_revocations_are_bitwise_identical(
        at_frac in 0.05f64..1.2,
        mask in 1u32..15,            // any non-empty strict subset of 4 nodes
        lead_frac in 0.0f64..0.5,
        target_iter in 0usize..2,
        many_threads in any::<bool>(),
    ) {
        let threads = if many_threads { 4usize } else { 1 };
        let w = PowerIteration { n: 18, tile_size: 6, density: 0.5, seed: 11 };
        let opt = optimizer();
        let iters = 2usize;
        let policy = CheckpointPolicy { interval: 1, replication: 3, max_rewinds: 6 };

        let baseline = repl1_cluster(&w, 4);
        let clean = run_checkpointed(
            &w, &opt, &baseline, iters, ExecMode::Real, threads_config(1),
            |_| FailurePlan::default(), RecoveryConfig::default(), policy,
        ).unwrap();
        let clean_bits = x_bits(&baseline, iters);
        let span = clean.reports[target_iter].makespan_s;

        let nodes: Vec<u32> = (0..4u32).filter(|n| mask & (1 << n) != 0).collect();
        let at_s = at_frac * span;
        let revoke = |iter: usize| {
            if iter == target_iter {
                FailurePlan {
                    revocations: vec![Revocation {
                        at_s,
                        nodes: nodes.clone(),
                        warning_lead_s: lead_frac * at_s,
                    }],
                    ..Default::default()
                }
            } else {
                FailurePlan::default()
            }
        };
        let cluster = repl1_cluster(&w, 4);
        let run = run_checkpointed(
            &w, &opt, &cluster, iters, ExecMode::Real, threads_config(threads),
            revoke, RecoveryConfig::default(), policy,
        ).unwrap();
        prop_assert_eq!(run.reports.len(), iters);
        prop_assert_eq!(x_bits(&cluster, iters), clean_bits);
    }
}
