//! Checkpoint + rewind across GNMF iterations: losing an iterate that
//! lineage cannot replay (its producer ran in an earlier iteration's
//! program) must rewind to the last checkpoint and still converge to the
//! exact failure-free factors.

use cumulon_cluster::instances::catalog;
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode, FailurePlan, SchedulerConfig};
use cumulon_core::calibrate::{CostModel, OpCoefficients};
use cumulon_core::{Optimizer, RecoveryConfig};
use cumulon_dfs::DfsConfig;
use cumulon_workloads::gnmf::Gnmf;
use cumulon_workloads::{run_checkpointed, CheckpointPolicy, Workload};

fn optimizer() -> Optimizer {
    let mut m = CostModel::default();
    for i in catalog() {
        m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    Optimizer::new(m)
}

fn small() -> Gnmf {
    Gnmf {
        m: 24,
        n: 18,
        rank: 4,
        tile_size: 6,
        density: 0.4,
        seed: 11,
    }
}

/// A replication-1 cluster with GNMF inputs registered.
fn repl1_cluster(g: &Gnmf) -> Cluster {
    let spec = ClusterSpec::named("m1.large", 4, 2).unwrap();
    let cluster = Cluster::provision_with(
        spec,
        Default::default(),
        DfsConfig {
            replication: 1,
            ..Default::default()
        },
    )
    .unwrap();
    g.setup(cluster.store()).unwrap();
    cluster
}

#[test]
fn gnmf_rewinds_to_checkpoint_after_iterate_loss() {
    let g = small();
    let opt = optimizer();
    let iters = 4usize;
    let policy = CheckpointPolicy {
        interval: 2,
        replication: 3,
        max_rewinds: 4,
    };

    // Failure-free baseline.
    let baseline = repl1_cluster(&g);
    let clean = run_checkpointed(
        &g,
        &opt,
        &baseline,
        iters,
        ExecMode::Real,
        SchedulerConfig::default(),
        |_| FailurePlan::default(),
        RecoveryConfig::default(),
        policy,
    )
    .unwrap();
    assert_eq!(clean.reports.len(), iters);
    assert_eq!(clean.rewinds, 0);
    assert!(clean.checkpoint_bytes > 0, "interval-2 run must checkpoint");
    let w_clean = baseline.store().get_local(&Gnmf::w_name(iters)).unwrap();
    let h_clean = baseline.store().get_local(&Gnmf::h_name(iters)).unwrap();

    // Kill each node in turn at the start of iteration 3. Iteration 3
    // reads W_3/H_3 (replication 1, produced by iteration 2 — no producer
    // in iteration 3's plan), so when the dead node held iterate tiles
    // the driver must rewind to the iteration-2 checkpoint (W_2/H_2 at
    // replication 3, which the death cannot touch) and replay.
    let mut rewound_any = false;
    for node in 0..4u32 {
        let cluster = repl1_cluster(&g);
        let run = run_checkpointed(
            &g,
            &opt,
            &cluster,
            iters,
            ExecMode::Real,
            SchedulerConfig::default(),
            |iter| {
                if iter == 3 {
                    FailurePlan {
                        node_failures: vec![(1e-3, node)],
                        ..Default::default()
                    }
                } else {
                    FailurePlan::default()
                }
            },
            RecoveryConfig::default(),
            policy,
        )
        .unwrap();
        assert_eq!(run.reports.len(), iters);
        let w = cluster.store().get_local(&Gnmf::w_name(iters)).unwrap();
        let h = cluster.store().get_local(&Gnmf::h_name(iters)).unwrap();
        assert_eq!(
            w.max_abs_diff(&w_clean).unwrap(),
            0.0,
            "W diverged after killing node {node}"
        );
        assert_eq!(
            h.max_abs_diff(&h_clean).unwrap(),
            0.0,
            "H diverged after killing node {node}"
        );
        if run.rewinds > 0 {
            rewound_any = true;
            assert!(
                run.wasted_makespan_s > 0.0,
                "a rewind discards simulated work"
            );
        }
    }
    assert!(
        rewound_any,
        "no node death forced a rewind — test lost its teeth"
    );
}

#[test]
fn checkpoint_interval_zero_restarts_from_scratch() {
    let g = small();
    let opt = optimizer();
    let policy = CheckpointPolicy {
        interval: 0,
        replication: 3,
        max_rewinds: 4,
    };
    let cluster = repl1_cluster(&g);
    // Lose an iterate in iteration 2: with checkpointing disabled the
    // driver must restart from iteration 0 (generated inputs) and still
    // finish correctly.
    let run = run_checkpointed(
        &g,
        &opt,
        &cluster,
        3,
        ExecMode::Real,
        SchedulerConfig::default(),
        |iter| {
            if iter == 2 {
                FailurePlan {
                    node_failures: vec![(1e-3, 0), (2e-3, 1)],
                    ..Default::default()
                }
            } else {
                FailurePlan::default()
            }
        },
        RecoveryConfig::default(),
        policy,
    )
    .unwrap();
    assert_eq!(run.reports.len(), 3);
    assert_eq!(run.checkpoint_bytes, 0);
    // Whether a rewind happened depends on tile placement; either way the
    // factors must exist and be finite.
    let w = cluster.store().get_local(&Gnmf::w_name(3)).unwrap();
    assert!(w.to_dense_vec().unwrap().iter().all(|v| v.is_finite()));
}
