//! # cumulon-workloads
//!
//! The statistical workloads used throughout the paper's evaluation,
//! expressed as Cumulon matrix programs plus the thin driver-side logic
//! that stitches iterations together:
//!
//! * [`gnmf`] — Gaussian non-negative matrix factorisation over a sparse
//!   document-term matrix (multiplicative updates);
//! * [`rsvd`] — randomized SVD: the cluster computes the heavy sketching
//!   products, the driver finishes with small `k×k` factorisations;
//! * [`regression`] — linear least squares, both one-shot via normal
//!   equations and iterative gradient descent (ridge-regularised);
//! * [`power`] — sparse power iteration (PageRank-style);
//! * [`chains`] — multiply-chain microworkloads for the optimizer
//!   experiments;
//! * [`smallmat`] — from-scratch driver-side dense kernels for the small
//!   matrices that never leave the driver (Cholesky, triangular solves,
//!   Jacobi eigenvalues, Gaussian elimination).

pub mod chains;
pub mod checkpoint;
pub mod elastic;
pub mod gnmf;
pub mod power;
pub mod regression;
pub mod rsvd;
pub mod smallmat;

pub use checkpoint::{run_checkpointed, CheckpointPolicy, CheckpointedRun};
pub use elastic::{run_elastic, ElasticDecision, ElasticPolicy, ElasticRun};

use std::collections::BTreeMap;

use cumulon_core::expr::InputDesc;
use cumulon_core::Result;
use cumulon_dfs::TileStore;

/// A workload: named generated inputs plus per-iteration programs.
pub trait Workload {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Input descriptions for iteration `iter` (names include iteration
    /// suffixes where state evolves).
    fn inputs(&self, iter: usize) -> BTreeMap<String, InputDesc>;

    /// Registers iteration-0 inputs in a store.
    fn setup(&self, store: &TileStore) -> Result<()>;

    /// The matrix program of iteration `iter`.
    fn program(&self, iter: usize) -> cumulon_core::Program;
}
