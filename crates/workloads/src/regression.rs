//! Linear least squares at cluster scale.
//!
//! Two routes to `w = argmin ‖Xw − y‖² + λ‖w‖²`:
//!
//! * **Normal equations** — one cluster program computes `G = XᵀX` and
//!   `b = Xᵀy`; the driver Cholesky-solves `(G + λI) w = b`. Best when the
//!   feature count `d` is driver-sized.
//! * **Gradient descent** — per-iteration cluster programs
//!   `w ← (1 − αλ) w − α Xᵀ(X w − y)`, the shape of iterative ML loops the
//!   paper targets.

use std::collections::BTreeMap;

use cumulon_cluster::{Cluster, ExecMode, RunReport};
use cumulon_core::error::CoreError;
use cumulon_core::expr::{InputDesc, ProgramBuilder};
use cumulon_core::{Optimizer, Program, Result};
use cumulon_dfs::TileStore;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::MatrixMeta;

use crate::smallmat::{cholesky, cholesky_solve, jacobi_eigenvalues, SmallMat};
use crate::Workload;

/// Regression workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Regression {
    /// Observations (rows of `X`).
    pub rows: usize,
    /// Features (columns of `X`).
    pub features: usize,
    /// Tile side length.
    pub tile_size: usize,
    /// Ridge regulariser `λ`.
    pub lambda: f64,
    /// Data seed.
    pub seed: u64,
}

impl Regression {
    fn x_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.rows, self.features, self.tile_size)
    }

    fn y_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.rows, 1, self.tile_size)
    }

    fn w_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.features, 1, self.tile_size)
    }

    fn w_name(iter: usize) -> String {
        format!("w_{iter}")
    }

    /// The normal-equation program: outputs `G = XᵀX` and `b = Xᵀy`.
    pub fn normal_eq_program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.input("X");
        let y = b.input("y");
        let xt = b.transpose(x);
        let g = b.mul(xt, x);
        let xty = b.mul(xt, y);
        b.output("G", g);
        b.output("b", xty);
        b.build()
    }

    /// Inputs of the normal-equation program.
    pub fn normal_eq_inputs(&self) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("X".into(), InputDesc::dense(self.x_meta()).generated());
        m.insert("y".into(), InputDesc::dense(self.y_meta()).generated());
        m
    }

    /// Runs the normal-equation route end to end, returning the solution.
    pub fn solve_normal_eq(
        &self,
        optimizer: &Optimizer,
        cluster: &Cluster,
        mode: ExecMode,
    ) -> Result<(Vec<f64>, RunReport)> {
        let report = optimizer.execute_on(
            cluster,
            &self.normal_eq_program(),
            &self.normal_eq_inputs(),
            "ne",
            mode,
        )?;
        if mode == ExecMode::Simulated {
            return Ok((Vec::new(), report));
        }
        let d = self.features;
        let g_local = cluster.store().get_local("G").map_err(CoreError::from)?;
        let mut g = SmallMat::new(
            d,
            d,
            g_local
                .to_dense_vec()
                .map_err(|e| CoreError::Exec(e.to_string()))?,
        );
        for i in 0..d {
            g.set(i, i, g.get(i, i) + self.lambda);
        }
        let b_local = cluster.store().get_local("b").map_err(CoreError::from)?;
        let b = b_local
            .to_dense_vec()
            .map_err(|e| CoreError::Exec(e.to_string()))?;
        let r = cholesky(&g)?;
        Ok((cholesky_solve(&r, &b), report))
    }

    /// A stable gradient step size from the normal-equation Gram matrix:
    /// `α = 1 / λ_max(G + λI)`.
    pub fn step_size(&self, store: &TileStore) -> Result<f64> {
        let d = self.features;
        let g_local = store.get_local("G").map_err(CoreError::from)?;
        let mut g = SmallMat::new(
            d,
            d,
            g_local
                .to_dense_vec()
                .map_err(|e| CoreError::Exec(e.to_string()))?,
        );
        for i in 0..d {
            g.set(i, i, g.get(i, i) + self.lambda);
        }
        let eig = jacobi_eigenvalues(&g, 60)?;
        let lmax = eig.first().copied().unwrap_or(1.0).max(1e-12);
        Ok(1.0 / lmax)
    }

    /// Gradient-descent program for one iteration, parameterised by `α`.
    pub fn gd_program(&self, iter: usize, alpha: f64) -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.input("X");
        let y = b.input("y");
        let w = b.input(&Self::w_name(iter));
        // residual r = X w − y; gradient g = Xᵀ r; update
        // w' = (1 − αλ) w − α g.
        let xw = b.mul(x, w);
        let r = b.sub(xw, y);
        let xt = b.transpose(x);
        let g = b.mul(xt, r);
        let shrunk = b.scale(w, 1.0 - alpha * self.lambda);
        let step = b.scale(g, alpha);
        let w_next = b.sub(shrunk, step);
        b.output(&Self::w_name(iter + 1), w_next);
        b.build()
    }

    fn gd_inputs(&self, iter: usize) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("X".into(), InputDesc::dense(self.x_meta()).generated());
        m.insert("y".into(), InputDesc::dense(self.y_meta()).generated());
        let mut w = InputDesc::dense(self.w_meta());
        w.generated = iter == 0;
        m.insert(Self::w_name(iter), w);
        m
    }

    /// Runs `iters` gradient-descent iterations; returns the final iterate
    /// (empty in simulated mode) and the per-iteration reports.
    pub fn run_gd(
        &self,
        optimizer: &Optimizer,
        cluster: &Cluster,
        iters: usize,
        alpha: f64,
        mode: ExecMode,
    ) -> Result<(Vec<f64>, Vec<RunReport>)> {
        let mut reports = Vec::with_capacity(iters);
        for iter in 0..iters {
            let report = optimizer.execute_on(
                cluster,
                &self.gd_program(iter, alpha),
                &self.gd_inputs(iter),
                &format!("gd{iter}"),
                mode,
            )?;
            reports.push(report);
        }
        if mode == ExecMode::Simulated {
            return Ok((Vec::new(), reports));
        }
        let w = cluster
            .store()
            .get_local(&Self::w_name(iters))
            .map_err(CoreError::from)?
            .to_dense_vec()
            .map_err(|e| CoreError::Exec(e.to_string()))?;
        Ok((w, reports))
    }
}

impl Workload for Regression {
    fn name(&self) -> &'static str {
        "regression"
    }

    fn inputs(&self, iter: usize) -> BTreeMap<String, InputDesc> {
        self.gd_inputs(iter)
    }

    fn setup(&self, store: &TileStore) -> Result<()> {
        store
            .register_generated(
                "X",
                self.x_meta(),
                Generator::DenseGaussian { seed: self.seed },
            )
            .map_err(CoreError::from)?;
        store
            .register_generated(
                "y",
                self.y_meta(),
                Generator::DenseGaussian {
                    seed: self.seed ^ 0x79,
                },
            )
            .map_err(CoreError::from)?;
        store
            .register_generated(&Self::w_name(0), self.w_meta(), Generator::Zeros)
            .map_err(CoreError::from)?;
        Ok(())
    }

    fn program(&self, iter: usize) -> Program {
        // Default α for the trait-level view; drivers use `step_size`.
        self.gd_program(iter, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::instances::catalog;
    use cumulon_cluster::ClusterSpec;
    use cumulon_core::calibrate::{CostModel, OpCoefficients};

    fn optimizer() -> Optimizer {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        Optimizer::new(m)
    }

    fn small() -> Regression {
        Regression {
            rows: 60,
            features: 5,
            tile_size: 8,
            lambda: 0.1,
            seed: 21,
        }
    }

    #[test]
    fn normal_equations_solve_least_squares() {
        let reg = small();
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        reg.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let (w, _) = reg.solve_normal_eq(&opt, &cluster, ExecMode::Real).unwrap();
        assert_eq!(w.len(), 5);
        // Verify the normal equations hold: (XᵀX + λI) w ≈ Xᵀ y.
        let x = cluster.store().get_local("X").unwrap();
        let y = cluster.store().get_local("y").unwrap();
        let xt = x.transpose();
        let g = xt.matmul(&x).unwrap().to_dense_vec().unwrap();
        let b = xt.matmul(&y).unwrap().to_dense_vec().unwrap();
        for i in 0..5 {
            let mut lhs = reg.lambda * w[i];
            for j in 0..5 {
                lhs += g[i * 5 + j] * w[j];
            }
            assert!((lhs - b[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", b[i]);
        }
    }

    #[test]
    fn gradient_descent_converges_to_closed_form() {
        let reg = small();
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        reg.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let (w_star, _) = reg.solve_normal_eq(&opt, &cluster, ExecMode::Real).unwrap();
        let alpha = reg.step_size(cluster.store()).unwrap();
        let (w_gd, reports) = reg
            .run_gd(&opt, &cluster, 60, alpha, ExecMode::Real)
            .unwrap();
        assert_eq!(reports.len(), 60);
        let err: f64 = w_star
            .iter()
            .zip(w_gd.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let scale: f64 = w_star.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-9);
        assert!(
            err / scale < 1e-3,
            "GD did not converge: max err {err} (scale {scale})"
        );
    }

    #[test]
    fn gd_iterates_shrink_residual() {
        let reg = small();
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        reg.setup(cluster.store()).unwrap();
        let opt = optimizer();
        reg.solve_normal_eq(&opt, &cluster, ExecMode::Real).unwrap();
        let alpha = reg.step_size(cluster.store()).unwrap();
        reg.run_gd(&opt, &cluster, 10, alpha, ExecMode::Real)
            .unwrap();
        let x = cluster.store().get_local("X").unwrap();
        let y = cluster.store().get_local("y").unwrap();
        let residual = |iter: usize| {
            let w = cluster
                .store()
                .get_local(&Regression::w_name(iter))
                .unwrap();
            let xw = x.matmul(&w).unwrap();
            xw.elementwise(&y, cumulon_matrix::tile::ElemOp::Sub)
                .unwrap()
                .frob_norm()
        };
        let r0 = residual(0);
        let r5 = residual(5);
        let r10 = residual(10);
        assert!(r5 < r0, "{r5} !< {r0}");
        assert!(r10 <= r5, "{r10} !<= {r5}");
    }

    #[test]
    fn simulated_mode_returns_reports_only() {
        let reg = Regression {
            rows: 100_000,
            features: 500,
            tile_size: 1000,
            lambda: 1.0,
            seed: 2,
        };
        let cluster = Cluster::provision(ClusterSpec::named("c1.xlarge", 4, 8).unwrap()).unwrap();
        reg.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let (w, report) = reg
            .solve_normal_eq(&opt, &cluster, ExecMode::Simulated)
            .unwrap();
        assert!(w.is_empty());
        assert!(report.makespan_s > 0.0);
    }
}
