//! Gaussian non-negative matrix factorisation (GNMF).
//!
//! Factorises a sparse non-negative `V (m×n)` as `W (m×r) × H (r×n)` with
//! the classic multiplicative updates
//!
//! ```text
//! H ← H ⊙ (Wᵀ V) ⊘ ((Wᵀ W) H)
//! W ← W ⊙ (V Hᵀ) ⊘ (W (H Hᵀ))
//! ```
//!
//! One iteration is a single Cumulon program with two outputs; the planner
//! materialises the four matrix products as multiply jobs and fuses the
//! element-wise update arithmetic around them. This is the paper's flagship
//! iterative sparse workload: the big sparse `V` participates in two
//! products per iteration while the thin factors stay dense.

use std::collections::BTreeMap;

use cumulon_cluster::{Cluster, ExecMode, RunReport};
use cumulon_core::error::CoreError;
use cumulon_core::expr::{InputDesc, ProgramBuilder};
use cumulon_core::{Optimizer, Program, Result};
use cumulon_dfs::TileStore;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::tile::ElemOp;
use cumulon_matrix::MatrixMeta;

use crate::Workload;

/// GNMF workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Gnmf {
    /// Rows of `V` (e.g. documents).
    pub m: usize,
    /// Columns of `V` (e.g. terms).
    pub n: usize,
    /// Factorisation rank.
    pub rank: usize,
    /// Tile side length.
    pub tile_size: usize,
    /// Density of `V`.
    pub density: f64,
    /// Data seed.
    pub seed: u64,
}

impl Gnmf {
    /// Name of the `W` factor at iteration `iter`.
    pub fn w_name(iter: usize) -> String {
        format!("W_{iter}")
    }

    /// Name of the `H` factor at iteration `iter`.
    pub fn h_name(iter: usize) -> String {
        format!("H_{iter}")
    }

    fn v_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.m, self.n, self.tile_size)
    }

    fn w_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.m, self.rank, self.tile_size)
    }

    fn h_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.rank, self.n, self.tile_size)
    }

    /// Driver loop: runs `iters` iterations on a provisioned cluster whose
    /// store already holds the inputs (see [`Workload::setup`]). Returns
    /// one run report per iteration.
    pub fn run(
        &self,
        optimizer: &Optimizer,
        cluster: &Cluster,
        iters: usize,
        mode: ExecMode,
    ) -> Result<Vec<RunReport>> {
        let mut reports = Vec::with_capacity(iters);
        for iter in 0..iters {
            let program = self.program(iter);
            let inputs = self.inputs(iter);
            let report =
                optimizer.execute_on(cluster, &program, &inputs, &format!("gnmf{iter}"), mode)?;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Driver-side objective `‖V − W H‖_F` (real mode, small scale only).
    pub fn objective(&self, store: &TileStore, iter: usize) -> Result<f64> {
        let v = store.get_local("V").map_err(CoreError::from)?;
        let w = store
            .get_local(&Self::w_name(iter))
            .map_err(CoreError::from)?;
        let h = store
            .get_local(&Self::h_name(iter))
            .map_err(CoreError::from)?;
        let wh = w.matmul(&h).map_err(|e| CoreError::Exec(e.to_string()))?;
        let diff = v
            .elementwise(&wh, ElemOp::Sub)
            .map_err(|e| CoreError::Exec(e.to_string()))?;
        Ok(diff.frob_norm())
    }
}

impl Workload for Gnmf {
    fn name(&self) -> &'static str {
        "gnmf"
    }

    fn inputs(&self, iter: usize) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        let mut v = InputDesc::sparse(self.v_meta(), self.density);
        v.generated = true;
        m.insert("V".into(), v);
        let generated = iter == 0;
        let mut w = InputDesc::dense(self.w_meta());
        w.generated = generated;
        let mut h = InputDesc::dense(self.h_meta());
        h.generated = generated;
        m.insert(Self::w_name(iter), w);
        m.insert(Self::h_name(iter), h);
        m
    }

    fn setup(&self, store: &TileStore) -> Result<()> {
        store
            .register_generated(
                "V",
                self.v_meta(),
                Generator::SparseUniform {
                    seed: self.seed,
                    density: self.density,
                },
            )
            .map_err(CoreError::from)?;
        store
            .register_generated(
                &Self::w_name(0),
                self.w_meta(),
                Generator::DenseUniform {
                    seed: self.seed ^ 0x57,
                    lo: 0.05,
                    hi: 1.0,
                },
            )
            .map_err(CoreError::from)?;
        store
            .register_generated(
                &Self::h_name(0),
                self.h_meta(),
                Generator::DenseUniform {
                    seed: self.seed ^ 0x48,
                    lo: 0.05,
                    hi: 1.0,
                },
            )
            .map_err(CoreError::from)?;
        Ok(())
    }

    fn program(&self, iter: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let v = b.input("V");
        let w = b.input(&Self::w_name(iter));
        let h = b.input(&Self::h_name(iter));

        // H' = H ⊙ (WᵀV) ⊘ ((WᵀW) H)
        let wt = b.transpose(w);
        let wtv = b.mul(wt, v);
        let wtw = b.mul(wt, w);
        let wtwh = b.mul(wtw, h);
        let h_num = b.elem_mul(h, wtv);
        let h_next = b.elem_div(h_num, wtwh);

        // W' = W ⊙ (V H'ᵀ) ⊘ (W (H' H'ᵀ))
        let ht = b.transpose(h_next);
        let vht = b.mul(v, ht);
        let hht = b.mul(h_next, ht);
        let whht = b.mul(w, hht);
        let w_num = b.elem_mul(w, vht);
        let w_next = b.elem_div(w_num, whht);

        b.output(&Self::h_name(iter + 1), h_next);
        b.output(&Self::w_name(iter + 1), w_next);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::instances::catalog;
    use cumulon_cluster::ClusterSpec;
    use cumulon_core::calibrate::{CostModel, OpCoefficients};

    fn optimizer() -> Optimizer {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        Optimizer::new(m)
    }

    fn small() -> Gnmf {
        Gnmf {
            m: 24,
            n: 18,
            rank: 4,
            tile_size: 6,
            density: 0.4,
            seed: 11,
        }
    }

    #[test]
    fn objective_decreases_over_iterations() {
        let g = small();
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        g.setup(cluster.store()).unwrap();
        let opt = optimizer();
        g.run(&opt, &cluster, 3, ExecMode::Real).unwrap();
        let o0 = g.objective(cluster.store(), 1).unwrap();
        let o1 = g.objective(cluster.store(), 2).unwrap();
        let o2 = g.objective(cluster.store(), 3).unwrap();
        assert!(
            o1 <= o0 * 1.0001,
            "iteration must not increase objective: {o0} -> {o1}"
        );
        assert!(o2 <= o1 * 1.0001, "{o1} -> {o2}");
    }

    #[test]
    fn factors_stay_nonnegative() {
        let g = small();
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        g.setup(cluster.store()).unwrap();
        let opt = optimizer();
        g.run(&opt, &cluster, 2, ExecMode::Real).unwrap();
        for name in [Gnmf::w_name(2), Gnmf::h_name(2)] {
            let m = cluster.store().get_local(&name).unwrap();
            let data = m.to_dense_vec().unwrap();
            assert!(data.iter().all(|&v| v >= 0.0), "{name} went negative");
        }
    }

    #[test]
    fn iteration_program_shapes_infer() {
        let g = small();
        let program = g.program(0);
        let info = program.infer(&g.inputs(0)).unwrap();
        // Outputs: H_1 is rank×n, W_1 is m×rank.
        let h_root = program.outputs.iter().find(|(n, _)| n == "H_1").unwrap().1;
        let w_root = program.outputs.iter().find(|(n, _)| n == "W_1").unwrap().1;
        assert_eq!((info[h_root].meta.rows, info[h_root].meta.cols), (4, 18));
        assert_eq!((info[w_root].meta.rows, info[w_root].meta.cols), (24, 4));
    }

    #[test]
    fn phantom_iteration_at_scale() {
        let g = Gnmf {
            m: 10_000,
            n: 10_000,
            rank: 20,
            tile_size: 1000,
            density: 0.01,
            seed: 1,
        };
        let cluster = Cluster::provision(ClusterSpec::named("c1.xlarge", 4, 8).unwrap()).unwrap();
        g.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let reports = g.run(&opt, &cluster, 1, ExecMode::Simulated).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].makespan_s > 0.0);
        // Sparse V must make the V-products far cheaper than dense m·n·r.
        let total_flops: f64 = reports[0].jobs.iter().map(|j| j.receipt.work.flops).sum();
        let dense_equiv = 2.0 * 10_000f64 * 10_000.0 * 20.0 * 4.0;
        assert!(
            total_flops < dense_equiv,
            "sparsity exploited: {total_flops} < {dense_equiv}"
        );
    }
}
