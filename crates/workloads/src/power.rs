//! Sparse power iteration (PageRank-style dominant-eigenvector solver).
//!
//! Iterates `x ← P x / ‖P x‖` over a big sparse `P`. The matrix-vector
//! product runs on the cluster; the driver folds the normalisation into the
//! *next* iteration's program as a scale factor, so no vector ever needs
//! rewriting in place.

use std::collections::BTreeMap;

use cumulon_cluster::{Cluster, ExecMode, RunReport};
use cumulon_core::error::CoreError;
use cumulon_core::expr::{InputDesc, ProgramBuilder};
use cumulon_core::{Optimizer, Program, Result};
use cumulon_dfs::TileStore;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::MatrixMeta;

use crate::Workload;

/// Power-iteration workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct PowerIteration {
    /// Dimension of the square sparse matrix.
    pub n: usize,
    /// Tile side length.
    pub tile_size: usize,
    /// Density of `P`.
    pub density: f64,
    /// Data seed.
    pub seed: u64,
}

/// Result of a driver-run power iteration.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// Rayleigh-quotient style estimates `‖y_i‖ / ‖x_i‖` per iteration.
    pub eigenvalue_estimates: Vec<f64>,
    /// Per-iteration run reports.
    pub reports: Vec<RunReport>,
}

impl PowerIteration {
    fn p_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.n, self.n, self.tile_size)
    }

    fn x_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.n, 1, self.tile_size)
    }

    fn x_name(iter: usize) -> String {
        format!("x_{iter}")
    }

    /// Program of iteration `iter`: `x_{iter+1} = scale · (P x_iter)`,
    /// where `scale` normalises the previous product.
    pub fn step_program(&self, iter: usize, scale: f64) -> Program {
        let mut b = ProgramBuilder::new();
        let p = b.input("P");
        let x = b.input(&Self::x_name(iter));
        let xs = b.scale(x, scale);
        let y = b.mul(p, xs);
        b.output(&Self::x_name(iter + 1), y);
        b.build()
    }

    fn step_inputs(&self, iter: usize) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert(
            "P".into(),
            InputDesc::sparse(self.p_meta(), self.density).generated(),
        );
        let mut x = InputDesc::dense(self.x_meta());
        x.generated = iter == 0;
        m.insert(Self::x_name(iter), x);
        m
    }

    /// Driver loop with normalisation folded into the programs (real mode;
    /// in simulated mode the normalisation scale stays 1).
    pub fn run(
        &self,
        optimizer: &Optimizer,
        cluster: &Cluster,
        iters: usize,
        mode: ExecMode,
    ) -> Result<PowerResult> {
        let mut scale = 1.0;
        let mut estimates = Vec::with_capacity(iters);
        let mut reports = Vec::with_capacity(iters);
        for iter in 0..iters {
            let report = optimizer.execute_on(
                cluster,
                &self.step_program(iter, scale),
                &self.step_inputs(iter),
                &format!("pw{iter}"),
                mode,
            )?;
            reports.push(report);
            if mode == ExecMode::Real {
                let y = self.vector_norm(cluster.store(), iter + 1)?;
                // `y = P x̂` with `x̂` unit-norm, so ‖y‖ estimates |λ₁|.
                estimates.push(y);
                scale = if y > 0.0 { 1.0 / y } else { 1.0 };
            } else {
                estimates.push(f64::NAN);
            }
        }
        Ok(PowerResult {
            eigenvalue_estimates: estimates,
            reports,
        })
    }

    fn vector_norm(&self, store: &TileStore, iter: usize) -> Result<f64> {
        let x = store
            .get_local(&Self::x_name(iter))
            .map_err(CoreError::from)?;
        Ok(x.frob_norm())
    }
}

impl Workload for PowerIteration {
    fn name(&self) -> &'static str {
        "power-iteration"
    }

    fn inputs(&self, iter: usize) -> BTreeMap<String, InputDesc> {
        self.step_inputs(iter)
    }

    fn setup(&self, store: &TileStore) -> Result<()> {
        store
            .register_generated(
                "P",
                self.p_meta(),
                Generator::SparseUniform {
                    seed: self.seed,
                    density: self.density,
                },
            )
            .map_err(CoreError::from)?;
        store
            .register_generated(
                &Self::x_name(0),
                self.x_meta(),
                Generator::DenseUniform {
                    seed: self.seed ^ 0x11,
                    lo: 0.5,
                    hi: 1.0,
                },
            )
            .map_err(CoreError::from)?;
        Ok(())
    }

    fn program(&self, iter: usize) -> Program {
        self.step_program(iter, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallmat::{jacobi_eigenvalues, SmallMat};
    use cumulon_cluster::instances::catalog;
    use cumulon_cluster::ClusterSpec;
    use cumulon_core::calibrate::{CostModel, OpCoefficients};

    fn optimizer() -> Optimizer {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        Optimizer::new(m)
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // small dense mat-vec check
    fn converges_to_dominant_eigenvalue_magnitude() {
        let w = PowerIteration {
            n: 24,
            tile_size: 6,
            density: 0.5,
            seed: 7,
        };
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        w.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let result = w.run(&opt, &cluster, 30, ExecMode::Real).unwrap();

        // The generated P is entrywise non-negative, so by Perron-Frobenius
        // the dominant eigenvalue is real positive and power iteration
        // converges to it.
        let p = cluster.store().get_local("P").unwrap();
        let pm = SmallMat::new(24, 24, p.to_dense_vec().unwrap());
        // Eigenvalues of the symmetrised similar problem don't equal those
        // of P; instead verify the fixed point: successive estimates agree.
        let est = &result.eigenvalue_estimates;
        let last = est[est.len() - 1];
        let prev = est[est.len() - 2];
        assert!(
            (last - prev).abs() / last < 1e-6,
            "not converged: {prev} vs {last}"
        );
        // And λ·x ≈ P x at the fixed point.
        let x = cluster
            .store()
            .get_local(&PowerIteration::x_name(30))
            .unwrap();
        let xv = x.to_dense_vec().unwrap();
        let norm: f64 = xv.iter().map(|v| v * v).sum::<f64>().sqrt();
        let xhat: Vec<f64> = xv.iter().map(|v| v / norm).collect();
        let mut px = [0.0; 24];
        for i in 0..24 {
            for j in 0..24 {
                px[i] += pm.get(i, j) * xhat[j];
            }
        }
        for i in 0..24 {
            assert!(
                (px[i] - last * xhat[i]).abs() < 1e-4 * last,
                "residual at {i}"
            );
        }
        let _ = jacobi_eigenvalues; // symmetric-only helper unused here
    }

    #[test]
    fn phantom_mode_runs() {
        let w = PowerIteration {
            n: 50_000,
            tile_size: 1000,
            density: 0.001,
            seed: 3,
        };
        let cluster = Cluster::provision(ClusterSpec::named("m1.xlarge", 8, 4).unwrap()).unwrap();
        w.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let result = w.run(&opt, &cluster, 2, ExecMode::Simulated).unwrap();
        assert_eq!(result.reports.len(), 2);
        assert!(result.eigenvalue_estimates.iter().all(|e| e.is_nan()));
    }
}
