//! Driver-side dense kernels for small matrices (`k×k`, `d×d`): the
//! factorisations a Cumulon driver performs locally after the cluster has
//! crunched the big products.

// Triangular solves and elimination read x[k] while writing x[i]; index
// loops state the recurrences the way the math is written.
#![allow(clippy::needless_range_loop)]

use cumulon_core::error::{CoreError, Result};

/// A small column-count dense matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallMat {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl SmallMat {
    /// Creates from row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        SmallMat { rows, cols, data }
    }

    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SmallMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Product `self × other`.
    pub fn matmul(&self, other: &SmallMat) -> SmallMat {
        assert_eq!(self.cols, other.rows);
        let mut out = SmallMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> SmallMat {
        let mut out = SmallMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Maximum absolute difference to another matrix.
    pub fn max_abs_diff(&self, other: &SmallMat) -> f64 {
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Cholesky factorisation of a symmetric positive-definite matrix:
/// returns upper-triangular `R` with `A = Rᵀ R`.
pub fn cholesky(a: &SmallMat) -> Result<SmallMat> {
    let n = a.rows;
    if a.cols != n {
        return Err(CoreError::Invariant(
            "cholesky needs a square matrix".into(),
        ));
    }
    let mut r = SmallMat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let mut sum = a.get(i, j);
            for k in 0..i {
                sum -= r.get(k, i) * r.get(k, j);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(CoreError::Invariant(format!(
                        "matrix not positive definite at pivot {i} (value {sum})"
                    )));
                }
                r.set(i, j, sum.sqrt());
            } else {
                r.set(i, j, sum / r.get(i, i));
            }
        }
    }
    Ok(r)
}

/// Solves `Rᵀ x = b` then `R y = x` (i.e. `A y = b` given `A = RᵀR`).
pub fn cholesky_solve(r: &SmallMat, b: &[f64]) -> Vec<f64> {
    let n = r.rows;
    debug_assert_eq!(b.len(), n);
    // Forward: Rᵀ x = b (Rᵀ is lower triangular).
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= r.get(k, i) * x[k];
        }
        x[i] = sum / r.get(i, i);
    }
    // Backward: R y = x.
    let mut y = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in i + 1..n {
            sum -= r.get(i, k) * y[k];
        }
        y[i] = sum / r.get(i, i);
    }
    y
}

/// Solves the upper-triangular system `R x = b`.
pub fn solve_upper(r: &SmallMat, b: &[f64]) -> Vec<f64> {
    let n = r.rows;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= r.get(i, k) * x[k];
        }
        x[i] = sum / r.get(i, i);
    }
    x
}

/// Inverse of an upper-triangular matrix.
pub fn invert_upper(r: &SmallMat) -> SmallMat {
    let n = r.rows;
    let mut inv = SmallMat::zeros(n, n);
    for col in 0..n {
        let mut e = vec![0.0; n];
        e[col] = 1.0;
        let x = solve_upper(r, &e);
        for (row, v) in x.into_iter().enumerate() {
            inv.set(row, col, v);
        }
    }
    inv
}

/// Eigenvalues of a symmetric matrix by cyclic Jacobi rotations, sorted
/// descending. Robust and dependency-free for the small matrices we need.
pub fn jacobi_eigenvalues(a: &SmallMat, sweeps: usize) -> Result<Vec<f64>> {
    let n = a.rows;
    if a.cols != n {
        return Err(CoreError::Invariant("jacobi needs a square matrix".into()));
    }
    let mut m = a.clone();
    for _ in 0..sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += m.get(p, q).abs();
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/cols p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    eig.sort_by(|a, b| b.partial_cmp(a).expect("eigenvalues are finite"));
    Ok(eig)
}

/// Solves a general square linear system by Gaussian elimination with
/// partial pivoting.
pub fn solve_linear(a: &SmallMat, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows;
    if a.cols != n || b.len() != n {
        return Err(CoreError::Invariant(
            "solve_linear needs square A and matching b".into(),
        ));
    }
    let mut aug: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).map(|j| a.get(i, j)).collect();
            row.push(b[i]);
            row
        })
        .collect();
    for col in 0..n {
        let (pivot, max) = (col..n)
            .map(|r| (r, aug[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty");
        if max < 1e-12 {
            return Err(CoreError::Invariant(format!(
                "singular system at column {col}"
            )));
        }
        aug.swap(col, pivot);
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = aug[row][col] / aug[col][col];
            for k in col..=n {
                aug[row][k] -= f * aug[col][k];
            }
        }
    }
    Ok((0..n).map(|i| aug[i][n] / aug[i][i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> SmallMat {
        // A = BᵀB + n·I is SPD for any B.
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let b = SmallMat::new(n, n, (0..n * n).map(|_| next()).collect());
        let mut a = b.transpose().matmul(&b);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        a
    }

    #[test]
    fn matmul_and_transpose() {
        let a = SmallMat::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = SmallMat::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
        assert_eq!(a.transpose().transpose(), a);
        let i = SmallMat::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(5, 7);
        let r = cholesky(&a).unwrap();
        let rt_r = r.transpose().matmul(&r);
        assert!(rt_r.max_abs_diff(&a) < 1e-9);
        // Upper triangular: below-diagonal entries are zero.
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = SmallMat::new(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = spd(4, 9);
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let b: Vec<f64> = (0..4)
            .map(|i| (0..4).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let r = cholesky(&a).unwrap();
        let x = cholesky_solve(&r, &b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn upper_solve_and_invert() {
        let r = SmallMat::new(3, 3, vec![2.0, 1.0, 0.5, 0.0, 3.0, 1.0, 0.0, 0.0, 4.0]);
        let x = solve_upper(&r, &[1.0, 2.0, 3.0]);
        // Check R x = b.
        for i in 0..3 {
            let lhs: f64 = (0..3).map(|j| r.get(i, j) * x[j]).sum();
            assert!((lhs - [1.0, 2.0, 3.0][i]).abs() < 1e-12);
        }
        let inv = invert_upper(&r);
        let prod = r.matmul(&inv);
        assert!(prod.max_abs_diff(&SmallMat::identity(3)) < 1e-12);
    }

    #[test]
    fn jacobi_known_eigenvalues() {
        // diag(5, 2, -1) rotated is still {5, 2, -1}; test on the diagonal
        // matrix itself and on an SPD matrix vs. its trace/determinant.
        let d = SmallMat::new(3, 3, vec![5.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, -1.0]);
        let eig = jacobi_eigenvalues(&d, 30).unwrap();
        assert_eq!(eig, vec![5.0, 2.0, -1.0]);

        let a = spd(4, 3);
        let eig = jacobi_eigenvalues(&a, 50).unwrap();
        let trace: f64 = (0..4).map(|i| a.get(i, i)).sum();
        assert!(
            (eig.iter().sum::<f64>() - trace).abs() < 1e-9,
            "trace preserved"
        );
        assert!(eig.iter().all(|&e| e > 0.0), "SPD has positive eigenvalues");
    }

    #[test]
    fn jacobi_2x2_exact() {
        let a = SmallMat::new(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = jacobi_eigenvalues(&a, 20).unwrap();
        assert!((eig[0] - 3.0).abs() < 1e-12);
        assert!((eig[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_general() {
        let a = SmallMat::new(3, 3, vec![0.0, 2.0, 1.0, 1.0, 0.0, 0.0, 3.0, 1.0, 2.0]);
        let x_true = [2.0, -1.0, 3.0];
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        let x = solve_linear(&a, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_linear_singular() {
        let a = SmallMat::new(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(solve_linear(&a, &[1.0, 2.0]).is_err());
    }
}
