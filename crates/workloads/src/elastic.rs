//! Elastic mid-run re-provisioning for iterative workloads.
//!
//! [`run_checkpointed`](crate::run_checkpointed) treats the cluster as
//! fixed for the whole loop. Spot markets break that assumption: a bulk
//! revocation can halve the fleet mid-run, and a cost model calibrated
//! offline may mis-predict the hardware actually rented. The driver here
//! re-plans at iteration boundaries, where re-provisioning is cheap (the
//! only live state is the checkpointable iterate):
//!
//! 1. **Refit** — every iteration runs traced; successful task spans are
//!    paired with their plan job's [`job_features`] and fed to
//!    [`fit_samples`], replacing the instance's [`OpCoefficients`] once
//!    enough samples accumulate. A singular fit is skipped, never fatal.
//! 2. **Replace** — revoked or failed capacity is topped back up to
//!    [`ElasticPolicy::target_nodes`] with fresh (on-demand) nodes.
//! 3. **Scale** — under a deadline, the refitted model projects the
//!    remaining iterations; a projected miss grows the fleet by
//!    [`ElasticPolicy::grow_step`], a comfortable surplus shrinks the
//!    extra capacity back toward the target (draining before
//!    decommissioning, so no data is lost even at replication 1).
//!
//! Elasticity is observational with respect to results: growing or
//! shrinking the fleet changes where tasks run, never what they compute,
//! so final iterates stay bitwise-identical to a fixed-fleet run.

use cumulon_cluster::{Cluster, ExecMode, FailurePlan, RunReport, SchedulerConfig};
use cumulon_core::calibrate::{featurize, fit_samples, OpCoefficients};
use cumulon_core::error::CoreError;
use cumulon_core::estimate::{job_features, TaskFeatures};
use cumulon_core::{Optimizer, RecoveryConfig, Result};

use crate::Workload;

/// When and how the elastic driver may act.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPolicy {
    /// Baseline fleet size the driver restores after revocations. Growth
    /// for deadline pressure stacks on top of this.
    pub target_nodes: u32,
    /// Deadline over the whole loop in simulated seconds (`None` = no
    /// scaling, only replacement and refit).
    pub deadline_s: Option<f64>,
    /// Nodes added per boundary when the projection misses the deadline.
    pub grow_step: u32,
    /// Projected-total-to-deadline ratio under which extra capacity
    /// (above `target_nodes`) is released again.
    pub shrink_slack: f64,
    /// Minimum traced samples before the first refit (OLS needs at least
    /// as many as there are features).
    pub min_refit_samples: usize,
    /// Whether to top the fleet back up to `target_nodes` after losses.
    pub replace_lost: bool,
    /// Replication factor assumed when featurizing traced tasks (must
    /// match the optimizer's, normally 3).
    pub replication: u32,
}

impl ElasticPolicy {
    /// Replacement + refit at `target` nodes, no deadline scaling.
    pub fn replace_at(target: u32) -> Self {
        ElasticPolicy {
            target_nodes: target,
            deadline_s: None,
            grow_step: 2,
            shrink_slack: 0.5,
            min_refit_samples: 7,
            replace_lost: true,
            replication: 3,
        }
    }
}

/// One re-provisioning decision, taken after an iteration completed.
#[derive(Debug, Clone)]
pub struct ElasticDecision {
    /// Iterations completed when the decision was taken.
    pub after_iter: usize,
    /// Live nodes before the decision.
    pub live_before: u32,
    /// Whether the cost model was refitted at this boundary.
    pub refit: bool,
    /// Traced samples accumulated so far.
    pub samples: usize,
    /// Nodes added (replacement + deadline growth).
    pub grown: u32,
    /// Nodes gracefully decommissioned.
    pub shrunk: u32,
    /// Human-readable rationale.
    pub reason: String,
}

/// Outcome of an elastic run.
#[derive(Debug)]
pub struct ElasticRun {
    /// One report per iteration.
    pub reports: Vec<RunReport>,
    /// Every boundary decision, in order.
    pub decisions: Vec<ElasticDecision>,
    /// How many times the cost model was refitted.
    pub refits: usize,
}

impl ElasticRun {
    /// Total simulated makespan across all iterations.
    pub fn total_makespan_s(&self) -> f64 {
        self.reports.iter().map(|r| r.makespan_s).sum()
    }
}

/// Plan-job index encoded in a traced job name (`"{op}#{idx}"`).
fn plan_index(job_name: &str) -> Option<usize> {
    job_name.rsplit_once('#').and_then(|(_, i)| i.parse().ok())
}

/// Feature-space anchor points for the refit prior: one dominant
/// direction each, at magnitudes typical of real tasks. A single
/// workload's traced tasks often sit in a low-dimensional slice of the
/// feature space (every mat-vec task looks alike), which makes plain OLS
/// singular; labelling these anchors with the *current* model's
/// predictions turns the refit into a proper prior-anchored update — full
/// rank, agreeing with the old model where the trace has no evidence.
fn anchor_features() -> Vec<TaskFeatures> {
    let mut anchors = Vec::new();
    let base = TaskFeatures {
        flops: 1e7,
        local_read: 1e6,
        remote_read: 1e6,
        local_write: 1e6,
        remote_write: 1e6,
        mem_mb: 8.0,
        io_ops: 4.0,
        spill_bytes: 1e6,
    };
    anchors.push(base);
    for i in 0..7 {
        let mut f = base;
        match i {
            0 => f.flops = 2e9,
            1 => f.local_read = 4e8,
            2 => f.remote_read = 4e8,
            3 => f.local_write = 4e8,
            4 => f.remote_write = 4e8,
            5 => f.io_ops = 512.0,
            // Disk-tier direction: keeps the refit full-rank on c₇ when
            // the traced tasks never spilled.
            _ => f.spill_bytes = 4e8,
        }
        anchors.push(f);
    }
    anchors
}

/// Runs `iters` iterations of `workload` on `cluster`, tracing every
/// iteration, refitting the optimizer's cost model from the traced
/// prefix, and re-provisioning the fleet at iteration boundaries per
/// `policy`. Iteration-0 inputs must already be registered (see
/// [`Workload::setup`]).
///
/// `failures_for(iter)` yields the injection plan per iteration, exactly
/// as in [`run_checkpointed`](crate::run_checkpointed); bulk spot
/// revocations in the plan kill nodes permanently, which is what the
/// replacement policy reacts to.
#[allow(clippy::too_many_arguments)]
pub fn run_elastic<W: Workload>(
    workload: &W,
    optimizer: &mut Optimizer,
    cluster: &Cluster,
    iters: usize,
    mode: ExecMode,
    config: SchedulerConfig,
    failures_for: impl Fn(usize) -> FailurePlan,
    recovery: RecoveryConfig,
    policy: ElasticPolicy,
) -> Result<ElasticRun> {
    let mut run = ElasticRun {
        reports: Vec::with_capacity(iters),
        decisions: Vec::new(),
        refits: 0,
    };
    let mut xs: Vec<[f64; 8]> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut elapsed_s = 0.0;
    for iter in 0..iters {
        let program = workload.program(iter);
        let inputs = workload.inputs(iter);
        let prefix = format!("{}e{iter}", workload.name());
        // The plan execute_on_traced will run, rebuilt deterministically so
        // traced spans can be paired with their job's features.
        let (plan, view) = optimizer.build_physical(cluster, &program, &inputs, &prefix)?;
        let trace = cumulon_core::Trace::enabled();
        let report = optimizer.execute_on_traced(
            cluster,
            &program,
            &inputs,
            &prefix,
            mode,
            config,
            &failures_for(iter),
            recovery,
            &trace,
        )?;
        elapsed_s += report.makespan_s;
        run.reports.push(report);
        if let Some(log) = trace.snapshot() {
            for t in log.tasks.iter().filter(|t| t.ok) {
                let Some(name) = log.job_name(t.job, t.round) else {
                    continue;
                };
                let Some(p) = plan_index(name) else { continue };
                if p >= plan.jobs.len() {
                    continue;
                }
                let (_, features) = job_features(&plan.jobs[p], &view);
                xs.push(featurize(&view.instance, view.slots, &features));
                ys.push(t.duration_s());
            }
        }
        // --- boundary decision ---
        let live = cluster.live_nodes();
        let mut decision = ElasticDecision {
            after_iter: iter + 1,
            live_before: live,
            refit: false,
            samples: xs.len(),
            grown: 0,
            shrunk: 0,
            reason: String::new(),
        };
        if xs.len() >= policy.min_refit_samples {
            // Prior-anchored design: traced rows plus anchor rows labelled
            // by the current model, so a low-rank trace still fits.
            let mut axs = xs.clone();
            let mut ays = ys.clone();
            if let Some(current) = optimizer.model().for_instance(view.instance.name) {
                for f in anchor_features() {
                    axs.push(featurize(&view.instance, view.slots, &f));
                    ays.push(current.predict(&view.instance, view.slots, &f));
                }
            }
            match fit_samples(&axs, &ays) {
                Ok(coeffs) => {
                    // Keep the offline sigma if the traced prefix was too
                    // uniform to exhibit stragglers.
                    let sigma = optimizer
                        .model()
                        .for_instance(view.instance.name)
                        .map(|c| c.sigma)
                        .unwrap_or(coeffs.sigma);
                    optimizer.model_mut().insert(
                        view.instance.name,
                        OpCoefficients {
                            sigma: if coeffs.sigma > 0.0 {
                                coeffs.sigma
                            } else {
                                sigma
                            },
                            ..coeffs
                        },
                    );
                    decision.refit = true;
                    run.refits += 1;
                }
                Err(CoreError::Calibration(_)) => {
                    // Singular / degenerate prefix: keep the old model.
                }
                Err(e) => return Err(e),
            }
        }
        if iter + 1 == iters {
            decision.reason = "final iteration".into();
            run.decisions.push(decision);
            break;
        }
        if policy.replace_lost && live < policy.target_nodes {
            let missing = policy.target_nodes - live;
            let ids = cluster.grow(missing);
            decision.grown += ids.len() as u32;
            decision.reason = format!("replaced {missing} lost nodes");
        }
        if let Some(deadline) = policy.deadline_s {
            // Project the remaining loop with the (possibly refitted)
            // model. An estimate failure is advisory, not fatal.
            if let Ok(est) = optimizer.estimate_on(
                cluster,
                &workload.program(iter + 1),
                &workload.inputs(iter + 1),
            ) {
                let remaining = est.makespan_s * (iters - iter - 1) as f64;
                let projected = elapsed_s + remaining;
                let live_now = cluster.live_nodes();
                if projected > deadline {
                    let ids = cluster.grow(policy.grow_step);
                    decision.grown += ids.len() as u32;
                    decision.reason = format!(
                        "projected {projected:.0}s > deadline {deadline:.0}s: grew {}",
                        ids.len()
                    );
                } else if projected < policy.shrink_slack * deadline
                    && live_now > policy.target_nodes
                {
                    let excess = (live_now - policy.target_nodes).min(policy.grow_step);
                    if let Ok(ids) = cluster.shrink(excess) {
                        decision.shrunk = ids.len() as u32;
                        decision.reason = format!(
                            "projected {projected:.0}s < {:.0}% of deadline: shrank {}",
                            policy.shrink_slack * 100.0,
                            ids.len()
                        );
                    }
                }
            }
        }
        if decision.reason.is_empty() {
            decision.reason = "steady".into();
        }
        run.decisions.push(decision);
    }
    Ok(run)
}
