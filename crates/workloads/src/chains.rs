//! Multiply-chain microworkloads for the optimizer experiments: skewed
//! dimension chains where association order changes cost by orders of
//! magnitude, and square chains for scaling sweeps.

use std::collections::BTreeMap;

use cumulon_core::error::CoreError;
use cumulon_core::expr::{InputDesc, ProgramBuilder};
use cumulon_core::{Program, Result};
use cumulon_dfs::TileStore;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::MatrixMeta;

use crate::Workload;

/// A chain `M0 × M1 × … × M_{f-1}` described by its boundary dimensions:
/// factor `i` is `dims[i] × dims[i+1]`.
#[derive(Debug, Clone)]
pub struct MulChain {
    /// `factors + 1` boundary dimensions.
    pub dims: Vec<usize>,
    /// Tile side length.
    pub tile_size: usize,
    /// Data seed.
    pub seed: u64,
}

impl MulChain {
    /// A square chain: `factors` matrices of `n×n`.
    pub fn square(n: usize, factors: usize, tile_size: usize, seed: u64) -> Self {
        MulChain {
            dims: vec![n; factors + 1],
            tile_size,
            seed,
        }
    }

    /// The classic skewed three-factor chain `(thin × wide × thin)` where
    /// association order matters enormously.
    pub fn skewed(thin: usize, wide: usize, tile_size: usize, seed: u64) -> Self {
        MulChain {
            dims: vec![thin, wide, thin, wide],
            tile_size,
            seed,
        }
    }

    /// Number of factors.
    pub fn factors(&self) -> usize {
        self.dims.len() - 1
    }

    fn factor_name(i: usize) -> String {
        format!("M{i}")
    }

    fn factor_meta(&self, i: usize) -> MatrixMeta {
        MatrixMeta::new(self.dims[i], self.dims[i + 1], self.tile_size)
    }
}

impl Workload for MulChain {
    fn name(&self) -> &'static str {
        "mul-chain"
    }

    fn inputs(&self, _iter: usize) -> BTreeMap<String, InputDesc> {
        (0..self.factors())
            .map(|i| {
                (
                    Self::factor_name(i),
                    InputDesc::dense(self.factor_meta(i)).generated(),
                )
            })
            .collect()
    }

    fn setup(&self, store: &TileStore) -> Result<()> {
        for i in 0..self.factors() {
            store
                .register_generated(
                    &Self::factor_name(i),
                    self.factor_meta(i),
                    Generator::DenseUniform {
                        seed: self.seed.wrapping_add(i as u64),
                        lo: -1.0,
                        hi: 1.0,
                    },
                )
                .map_err(CoreError::from)?;
        }
        Ok(())
    }

    fn program(&self, _iter: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let factors: Vec<_> = (0..self.factors())
            .map(|i| b.input(&Self::factor_name(i)))
            .collect();
        let chain = b.mul_chain(&factors);
        b.output("CHAIN", chain);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::instances::catalog;
    use cumulon_cluster::{Cluster, ClusterSpec, ExecMode};
    use cumulon_core::calibrate::{CostModel, OpCoefficients};
    use cumulon_core::Optimizer;

    fn optimizer() -> Optimizer {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        Optimizer::new(m)
    }

    #[test]
    fn chain_executes_correctly() {
        let chain = MulChain {
            dims: vec![8, 12, 6, 10],
            tile_size: 4,
            seed: 5,
        };
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        chain.setup(cluster.store()).unwrap();
        let opt = optimizer();
        opt.execute_on(
            &cluster,
            &chain.program(0),
            &chain.inputs(0),
            "c",
            ExecMode::Real,
        )
        .unwrap();
        let got = cluster.store().get_local("CHAIN").unwrap();
        // Reference: left-associated local multiply.
        let m0 = cluster.store().get_local("M0").unwrap();
        let m1 = cluster.store().get_local("M1").unwrap();
        let m2 = cluster.store().get_local("M2").unwrap();
        let expect = m0.matmul(&m1).unwrap().matmul(&m2).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-6);
    }

    #[test]
    fn reordering_beats_naive_on_skewed_chain() {
        // thin=200, wide=4000: (M0 M1) M2 forms a 200×200 intermediate;
        // M0 (M1 M2) would form 4000×4000.
        let chain = MulChain::skewed(200, 4_000, 100, 1);
        let program = chain.program(0);
        let inputs = chain.inputs(0);
        let naive = cumulon_core::rewrite::chain::program_mul_cost(
            &program,
            &inputs,
            &cumulon_core::rewrite::chain::flops_cost,
        )
        .unwrap();
        let opt = optimizer();
        let rewritten = opt.rewrite(&program, &inputs).unwrap();
        let optimal = cumulon_core::rewrite::chain::program_mul_cost(
            &rewritten,
            &inputs,
            &cumulon_core::rewrite::chain::flops_cost,
        )
        .unwrap();
        assert!(optimal <= naive, "{optimal} vs {naive}");
    }

    #[test]
    fn builders() {
        let sq = MulChain::square(100, 4, 10, 0);
        assert_eq!(sq.factors(), 4);
        let sk = MulChain::skewed(10, 1000, 10, 0);
        assert_eq!(sk.factors(), 3);
        assert_eq!(sk.factor_meta(1).rows, 1000);
    }
}
