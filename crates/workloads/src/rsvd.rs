//! Randomized SVD (RSVD).
//!
//! The cluster does the heavy lifting — sketching a big `A (m×n)` with a
//! Gaussian test matrix `Ω (n×k)` and optional power iterations — while the
//! driver finishes with `k×k` factorisations:
//!
//! ```text
//! Y   = A Ω                 (cluster; optionally (A Aᵀ)^q A Ω)
//! G1  = Yᵀ Y                (cluster, k×k)
//! B   = Aᵀ Y                (cluster, n×k, shared)
//! G2  = Bᵀ B                (cluster, k×k)
//! R   = chol(G1)            (driver)
//! σ_i = sqrt(eig(R⁻ᵀ G2 R⁻¹))   (driver)
//! ```
//!
//! With `Q = Y R⁻¹` orthonormal, `R⁻ᵀ G2 R⁻¹ = (QᵀA)(QᵀA)ᵀ`, whose
//! eigenvalues are the squared singular values of the projected matrix —
//! the classic RSVD estimate.

use std::collections::BTreeMap;

use cumulon_cluster::{Cluster, ExecMode, RunReport};
use cumulon_core::error::CoreError;
use cumulon_core::expr::{InputDesc, ProgramBuilder};
use cumulon_core::{Optimizer, Program, Result};
use cumulon_dfs::TileStore;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::MatrixMeta;

use crate::smallmat::{cholesky, invert_upper, jacobi_eigenvalues, SmallMat};
use crate::Workload;

/// RSVD workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Rsvd {
    /// Rows of `A`.
    pub m: usize,
    /// Columns of `A`.
    pub n: usize,
    /// Sketch width (target rank + oversampling).
    pub k: usize,
    /// Tile side length.
    pub tile_size: usize,
    /// Number of power iterations (0 = plain sketch).
    pub power_iters: usize,
    /// Data seed.
    pub seed: u64,
}

impl Rsvd {
    fn a_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.m, self.n, self.tile_size)
    }

    fn omega_meta(&self) -> MatrixMeta {
        MatrixMeta::new(self.n, self.k, self.tile_size)
    }

    /// Runs the full pipeline, returning per-step run reports.
    pub fn run(
        &self,
        optimizer: &Optimizer,
        cluster: &Cluster,
        mode: ExecMode,
    ) -> Result<Vec<RunReport>> {
        let mut reports = Vec::new();
        for step in 0..=self.power_iters {
            let report = optimizer.execute_on(
                cluster,
                &self.program(step),
                &self.inputs(step),
                &format!("rsvd{step}"),
                mode,
            )?;
            reports.push(report);
        }
        // Final Gram step.
        let step = self.power_iters + 1;
        let report = optimizer.execute_on(
            cluster,
            &self.gram_program(),
            &self.gram_inputs(),
            &format!("rsvd{step}"),
            mode,
        )?;
        reports.push(report);
        Ok(reports)
    }

    fn y_name(step: usize) -> String {
        format!("Y_{step}")
    }

    fn final_y(&self) -> String {
        Self::y_name(self.power_iters)
    }

    /// The Gram-stage program: `G1 = YᵀY`, `B = AᵀY`, `G2 = BᵀB`.
    pub fn gram_program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let y = b.input(&self.final_y());
        let yt = b.transpose(y);
        let g1 = b.mul(yt, y);
        let at = b.transpose(a);
        let bmat = b.mul(at, y);
        let bt = b.transpose(bmat);
        let g2 = b.mul(bt, bmat);
        b.output("G1", g1);
        b.output("G2", g2);
        b.build()
    }

    /// Inputs of the Gram stage.
    pub fn gram_inputs(&self) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("A".into(), InputDesc::dense(self.a_meta()).generated());
        m.insert(
            self.final_y(),
            InputDesc::dense(MatrixMeta::new(self.m, self.k, self.tile_size)),
        );
        m
    }

    /// Driver-side finish: approximate singular values, descending.
    pub fn singular_values(&self, store: &TileStore) -> Result<Vec<f64>> {
        let g1 = fetch_small(store, "G1", self.k)?;
        let g2 = fetch_small(store, "G2", self.k)?;
        let r = cholesky(&g1)?;
        let rinv = invert_upper(&r);
        let mid = rinv.transpose().matmul(&g2).matmul(&rinv);
        let eig = jacobi_eigenvalues(&mid, 60)?;
        Ok(eig.into_iter().map(|e| e.max(0.0).sqrt()).collect())
    }
}

/// Fetches a small `k×k` matrix from the store into driver memory.
pub fn fetch_small(store: &TileStore, name: &str, k: usize) -> Result<SmallMat> {
    let local = store.get_local(name).map_err(CoreError::from)?;
    let data = local
        .to_dense_vec()
        .map_err(|e| CoreError::Exec(e.to_string()))?;
    Ok(SmallMat::new(k, k, data))
}

impl Workload for Rsvd {
    fn name(&self) -> &'static str {
        "rsvd"
    }

    fn inputs(&self, step: usize) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("A".into(), InputDesc::dense(self.a_meta()).generated());
        if step == 0 {
            m.insert(
                "Omega".into(),
                InputDesc::dense(self.omega_meta()).generated(),
            );
        } else {
            m.insert(
                Self::y_name(step - 1),
                InputDesc::dense(MatrixMeta::new(self.m, self.k, self.tile_size)),
            );
        }
        m
    }

    fn setup(&self, store: &TileStore) -> Result<()> {
        store
            .register_generated(
                "A",
                self.a_meta(),
                Generator::DenseGaussian { seed: self.seed },
            )
            .map_err(CoreError::from)?;
        store
            .register_generated(
                "Omega",
                self.omega_meta(),
                Generator::DenseGaussian {
                    seed: self.seed ^ 0x0e6a,
                },
            )
            .map_err(CoreError::from)?;
        Ok(())
    }

    /// Step 0: `Y_0 = A Ω`. Step `s>0`: `Y_s = A (Aᵀ Y_{s-1})` (one power
    /// iteration).
    fn program(&self, step: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let y = if step == 0 {
            let omega = b.input("Omega");
            b.mul(a, omega)
        } else {
            let prev = b.input(&Self::y_name(step - 1));
            let at = b.transpose(a);
            let aty = b.mul(at, prev);
            b.mul(a, aty)
        };
        b.output(&Self::y_name(step), y);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::instances::catalog;
    use cumulon_cluster::ClusterSpec;
    use cumulon_core::calibrate::{CostModel, OpCoefficients};
    use cumulon_matrix::LocalMatrix;

    fn optimizer() -> Optimizer {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        Optimizer::new(m)
    }

    /// Reference singular values via Jacobi on the full Gram matrix AᵀA.
    fn reference_singular_values(a: &LocalMatrix, n: usize) -> Vec<f64> {
        let at_a = a.transpose().matmul(a).unwrap();
        let g = SmallMat::new(n, n, at_a.to_dense_vec().unwrap());
        jacobi_eigenvalues(&g, 80)
            .unwrap()
            .into_iter()
            .map(|e| e.max(0.0).sqrt())
            .collect()
    }

    #[test]
    fn full_width_sketch_recovers_all_singular_values() {
        // k = n: the sketch spans the whole row space, so the RSVD values
        // must match the exact ones almost exactly.
        let r = Rsvd {
            m: 30,
            n: 8,
            k: 8,
            tile_size: 5,
            power_iters: 0,
            seed: 5,
        };
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        r.setup(cluster.store()).unwrap();
        let opt = optimizer();
        r.run(&opt, &cluster, ExecMode::Real).unwrap();
        let got = r.singular_values(cluster.store()).unwrap();
        let a = cluster.store().get_local("A").unwrap();
        let want = reference_singular_values(&a, 8);
        assert_eq!(got.len(), 8);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() / w < 1e-6, "got {g}, want {w}");
        }
    }

    #[test]
    fn power_iterations_sharpen_top_values() {
        let mk = |power_iters| {
            let r = Rsvd {
                m: 40,
                n: 20,
                k: 6,
                tile_size: 7,
                power_iters,
                seed: 9,
            };
            let cluster =
                Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
            r.setup(cluster.store()).unwrap();
            let opt = optimizer();
            r.run(&opt, &cluster, ExecMode::Real).unwrap();
            let got = r.singular_values(cluster.store()).unwrap();
            let a = cluster.store().get_local("A").unwrap();
            let want = reference_singular_values(&a, 20);
            // Relative error of the top-3 estimates.
            got.iter()
                .zip(want.iter())
                .take(3)
                .map(|(g, w)| (g - w).abs() / w)
                .fold(0.0f64, f64::max)
        };
        let err0 = mk(0);
        let err2 = mk(2);
        assert!(
            err2 <= err0 + 1e-9,
            "power iterations must not hurt: {err2} vs {err0}"
        );
        assert!(
            err2 < 0.12,
            "top values should be close after 2 power iterations: {err2}"
        );
    }

    #[test]
    fn sketch_values_lower_bound_truth() {
        // Projection can only shrink singular values.
        let r = Rsvd {
            m: 25,
            n: 12,
            k: 5,
            tile_size: 6,
            power_iters: 0,
            seed: 3,
        };
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        r.setup(cluster.store()).unwrap();
        let opt = optimizer();
        r.run(&opt, &cluster, ExecMode::Real).unwrap();
        let got = r.singular_values(cluster.store()).unwrap();
        let a = cluster.store().get_local("A").unwrap();
        let want = reference_singular_values(&a, 12);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!(*g <= w * (1.0 + 1e-9), "sketched {g} exceeds true {w}");
        }
    }

    #[test]
    fn phantom_pipeline_at_scale() {
        let r = Rsvd {
            m: 20_000,
            n: 10_000,
            k: 50,
            tile_size: 1000,
            power_iters: 1,
            seed: 1,
        };
        let cluster = Cluster::provision(ClusterSpec::named("c1.xlarge", 8, 8).unwrap()).unwrap();
        r.setup(cluster.store()).unwrap();
        let opt = optimizer();
        let reports = r.run(&opt, &cluster, ExecMode::Simulated).unwrap();
        assert_eq!(reports.len(), 3); // sketch, power, gram
        assert!(reports.iter().all(|r| r.makespan_s > 0.0));
    }

    #[test]
    fn step_programs_infer() {
        let r = Rsvd {
            m: 100,
            n: 60,
            k: 10,
            tile_size: 20,
            power_iters: 2,
            seed: 1,
        };
        for step in 0..=2 {
            let p = r.program(step);
            let info = p.infer(&r.inputs(step)).unwrap();
            let (_, root) = &p.outputs[0];
            assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (100, 10));
        }
        let g = r.gram_program();
        let info = g.infer(&r.gram_inputs()).unwrap();
        for (_, root) in &g.outputs {
            assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (10, 10));
        }
    }
}
