//! Checkpointed execution of iterative workloads.
//!
//! Lineage recovery (see `cumulon_core::recovery`) can replay lost
//! intermediates *within* one iteration's program, but an iterate carried
//! across iterations — `W_7` read by iteration 7 — has no producer in
//! iteration 7's plan: lose its tiles and the run is
//! [`CoreError::Unrecoverable`]. The driver here closes that gap the way
//! the paper's Hadoop deployment does: every
//! [`CheckpointPolicy::interval`] iterations it re-persists the evolving
//! iterate at [`CheckpointPolicy::replication`] (via
//! [`cumulon_dfs::TileStore::checkpoint_matrix`]), truncating the lineage it must be
//! able to replay. On an unrecoverable loss it *rewinds*: drops every
//! iterate produced after the last checkpoint and resumes from there,
//! charging the discarded simulated time to
//! [`CheckpointedRun::wasted_makespan_s`] so recovery overhead stays
//! visible in experiment output.

use cumulon_cluster::{Cluster, ExecMode, FailurePlan, RunReport, SchedulerConfig};
use cumulon_core::error::CoreError;
use cumulon_core::{Optimizer, RecoveryConfig, Result};

use crate::Workload;

/// When and how durably to checkpoint the evolving iterate.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `interval` completed iterations
    /// (0 disables checkpointing; rewinds then restart from iteration 0).
    pub interval: usize,
    /// Replication factor of checkpointed tiles.
    pub replication: usize,
    /// Give up after this many rewinds.
    pub max_rewinds: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            interval: 4,
            replication: 3,
            max_rewinds: 4,
        }
    }
}

/// Outcome of a checkpointed run: per-iteration reports for the
/// iterations that *stuck*, plus an honest account of what failure cost.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// One report per final iteration (discarded attempts excluded).
    pub reports: Vec<RunReport>,
    /// How many times the driver rewound to a checkpoint.
    pub rewinds: usize,
    /// Total payload bytes moved by checkpoint writes.
    pub checkpoint_bytes: u64,
    /// Simulated seconds spent on iterations later discarded by rewinds.
    pub wasted_makespan_s: f64,
}

/// Runs `iters` iterations of `workload` on `cluster` under failure
/// injection, with lineage recovery inside each iteration and
/// checkpoint/rewind across iterations. Iteration-0 inputs must already
/// be registered (see [`Workload::setup`]); they are expected to be
/// generated (re-derivable), which makes iteration 0 always a safe rewind
/// target.
///
/// `failures_for(iter)` yields the injection plan for each iteration's
/// run (simulated time restarts at 0 per iteration, so timed node deaths
/// are relative to that iteration; nodes killed earlier stay dead). Pass
/// `|_| FailurePlan::default()` for failure-free runs.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed<W: Workload>(
    workload: &W,
    optimizer: &Optimizer,
    cluster: &Cluster,
    iters: usize,
    mode: ExecMode,
    config: SchedulerConfig,
    failures_for: impl Fn(usize) -> FailurePlan,
    recovery: RecoveryConfig,
    policy: CheckpointPolicy,
) -> Result<CheckpointedRun> {
    let store = cluster.store();
    let mut run = CheckpointedRun {
        reports: Vec::with_capacity(iters),
        rewinds: 0,
        checkpoint_bytes: 0,
        wasted_makespan_s: 0.0,
    };
    // First iteration whose inputs are durable: its iterate is either
    // checkpointed or (for 0) re-derivable from generators.
    let mut durable = 0usize;
    let mut iter = 0usize;
    let mut attempt = 0usize; // distinct temp namespaces across retries
    while iter < iters {
        let program = workload.program(iter);
        let inputs = workload.inputs(iter);
        let prefix = format!("{}{iter}a{attempt}", workload.name());
        let base = failures_for(iter);
        let failures_iter = FailurePlan {
            // Decorrelate task-failure coin flips across retry attempts;
            // timed node deaths re-fire but dead nodes stay dead.
            seed: base.seed.wrapping_add((attempt * 7919) as u64),
            ..base
        };
        match optimizer.execute_on_with(
            cluster,
            &program,
            &inputs,
            &prefix,
            mode,
            config,
            &failures_iter,
            recovery,
        ) {
            Ok(report) => {
                run.reports.push(report);
                iter += 1;
                if policy.interval > 0 && iter.is_multiple_of(policy.interval) && iter < iters {
                    for (name, _) in &workload.program(iter - 1).outputs {
                        let receipt = store
                            .checkpoint_matrix(name, policy.replication)
                            .map_err(CoreError::from)?;
                        run.checkpoint_bytes += receipt.bytes;
                    }
                    durable = iter;
                }
            }
            Err(CoreError::Unrecoverable { matrix, detail }) => {
                run.rewinds += 1;
                attempt += 1;
                if run.rewinds > policy.max_rewinds {
                    return Err(CoreError::Unrecoverable {
                        matrix,
                        detail: format!("{detail} (gave up after {} rewinds)", policy.max_rewinds),
                    });
                }
                // Discard everything after the last durable iterate: the
                // iterates those discarded iterations produced...
                for j in durable..iter {
                    for (name, _) in &workload.program(j).outputs {
                        if store.contains(name) {
                            store.drop_matrix(name).map_err(CoreError::from)?;
                        }
                    }
                }
                // ...and the partial outputs of the failed attempt itself.
                for (name, _) in &program.outputs {
                    if store.contains(name) {
                        store.drop_matrix(name).map_err(CoreError::from)?;
                    }
                }
                for r in run.reports.drain(durable..) {
                    run.wasted_makespan_s += r.makespan_s;
                }
                iter = durable;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(run)
}
