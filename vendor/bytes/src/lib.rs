//! Minimal offline stand-in for the `bytes` crate: cheaply cloneable
//! shared byte buffers (`Bytes`), a growable builder (`BytesMut`), and the
//! little-endian cursor traits (`Buf`/`BufMut`) used by tile
//! serialization. Semantics match the real crate for the subset
//! implemented; `Bytes::clone` and `Bytes::slice` are O(1) via a shared
//! `Arc`.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            end: data.len(),
            data: Arc::from(data),
            start: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            end: v.len(),
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte buffer (little-endian getters).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte buffer (little-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0x434d_544c);
        b.put_u64_le(77);
        b.put_f64_le(2.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 20);
        assert_eq!(frozen.get_u32_le(), 0x434d_544c);
        assert_eq!(frozen.get_u64_le(), 77);
        assert_eq!(frozen.get_f64_le(), 2.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
    }
}
