//! Minimal offline stand-in for `criterion`: the same bench authoring
//! surface (`criterion_group!`, `criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::iter`) with a simple median-of-samples
//! wall-clock measurement and plain-text reporting instead of the full
//! statistical machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code that imports it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark's closure repeatedly and times it.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Measures `f` over this bench's sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.measured.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.measured.is_empty() {
            return Duration::ZERO;
        }
        self.measured.sort_unstable();
        self.measured[self.measured.len() / 2]
    }
}

/// Benchmark registry/driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has a fixed one-call warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is count-based here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        measured: Vec::with_capacity(samples),
    };
    f(&mut b);
    let med = b.median();
    println!("bench {id:<40} median {med:>12.3?} ({samples} samples)");
}

/// Declares a bench group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).warm_up_time(Duration::ZERO);
        let mut calls = 0u32;
        group.bench_function("inc", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
