//! Minimal offline stand-in for `serde`. This workspace uses serde only
//! for `#[derive(Serialize, Deserialize)]` annotations — no serializer
//! backend (e.g. serde_json) is compiled in — so re-exporting no-op
//! derives is sufficient for the source tree to build unchanged.

pub use serde_derive::{Deserialize, Serialize};
