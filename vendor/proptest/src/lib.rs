//! Minimal offline stand-in for `proptest`: deterministic random testing
//! with the same surface syntax (`proptest!`, `prop_assert*!`,
//! `prop_oneof!`, `prop_assume!`, strategies over ranges/tuples/
//! collections, `any::<T>()`, `Just`, `.prop_map`).
//!
//! Differences from the real crate, deliberate for an offline stub:
//! no shrinking (failures report the failing case index and its seed is
//! deterministic, so cases replay exactly), and generation is driven by a
//! fixed per-test seed rather than an entropy source — every run explores
//! the same cases.

pub mod test_runner {
    //! Deterministic runner plumbing: config, RNG, and case errors.

    /// Runner configuration; only `cases` is meaningful in this stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test path + case
    /// index, so every run (and every failure replay) sees identical data.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `path`.
        pub fn deterministic(path: &str, case: u64) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }

        /// True for `Reject`.
        pub fn is_rejection(&self) -> bool {
            matches!(self, TestCaseError::Reject)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject => write!(f, "input rejected by prop_assume"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Weighted choice among strategies of one value type
    /// (see `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds from `(weight, strategy)` pairs.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight walk covers the total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    /// String patterns: supported as the simplified form `.{lo,hi}` —
    /// a string of `lo..=hi` arbitrary non-newline characters. Any other
    /// pattern falls back to 0..=64 characters.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 64));
            let len = if hi > lo {
                rng.usize_in(lo, hi + 1)
            } else {
                lo
            };
            (0..len).map(|_| random_char(rng)).collect()
        }
    }

    fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?;
        let rest = rest.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn random_char(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, with some tabs and non-ASCII thrown in.
        match rng.next_u64() % 16 {
            0 => '\t',
            1 => char::from_u32(0x00C0 + (rng.next_u64() % 0x40) as u32).unwrap_or('é'),
            2 => char::from_u32(0x0390 + (rng.next_u64() % 0x20) as u32).unwrap_or('λ'),
            _ => (0x20u8 + (rng.next_u64() % 0x5F) as u8) as char,
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, wide-ranged values; NaN/inf generation is not useful
            // for the numeric invariants tested here.
            let mag = rng.next_f64() * 1e12;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size.start ..= size.end - 1` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, in one import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests. Accepts an optional leading
/// `#![proptest_config(...)]` and any number of test functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            while __passed < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                __case += 1;
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err(e) if e.is_rejection() => {
                        __rejected += 1;
                        if __rejected > __config.max_global_rejects {
                            panic!(
                                "prop_assume rejected {} inputs before {} cases passed",
                                __rejected, __config.cases
                            );
                        }
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("property failed at case {}: {}", __case - 1, e)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies that
/// share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 0u8..4), f in 0.5f64..2.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_vec(v in crate::collection::vec(
            prop_oneof![3 => (0u8..5).prop_map(i64::from), 1 => Just(-1i64)],
            1..20,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == -1 || (0..5).contains(&x)));
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_pattern(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0u64..1000);
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
