//! Minimal offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API
//! without `Result`-returning lock methods, backed by `std::sync`.
//! Poisoning is ignored (a panicked holder does not wedge the lock),
//! matching parking_lot semantics.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`]. Unlike real parking_lot this
/// keeps `std`'s consuming `wait` signature (`guard in, guard out`), since
/// the guard here *is* `std`'s; wakeups ignore poisoning like the locks.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader–writer lock whose guards are not `Result`-wrapped.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
