//! No-op `Serialize`/`Deserialize` derives. The workspace uses serde
//! derives purely as declarations (no serializer backend is compiled in),
//! so the derives only need to accept the `#[serde(...)]` attribute and
//! emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attrs; emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attrs; emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
