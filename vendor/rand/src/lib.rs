//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses: `StdRng::seed_from_u64`, `random_range` over
//! integer and float ranges, and slice shuffling.
//!
//! The generator is SplitMix64 — deterministic, fast, and good enough for
//! simulation seeding and test-data generation (the only uses here). It is
//! **not** a cryptographic RNG and makes no cross-version stability
//! promise beyond this repository.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty random_range");
        let v = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{RngCore, SampleRange};

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..6);
            assert!((3..6).contains(&v));
            let f = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let s = rng.random_range(-3i8..4);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
